// x86-64 CRC-32 kernel: carry-less-multiply folding (PCLMULQDQ).
//
// Folds four 128-bit lanes per iteration, then reduces 512 -> 128 -> 64 ->
// 32 bits with a Barrett step. The fold/reduction constants are the
// bit-reflected values for the IEEE 802.3 polynomial from Intel's "Fast
// CRC Computation for Generic Polynomials Using PCLMULQDQ" white paper.
// Sub-16-byte tails (and buffers too small to fold) fall through to the
// portable slicing-by-8 kernel on the same raw state.
#include "checksum/crc32_impl.hpp"

#include <initializer_list>

#if defined(__x86_64__) && defined(__GNUC__)
#define EFAC_HAVE_PCLMUL_KERNEL 1
#include <immintrin.h>
#endif

namespace efac::checksum::detail {

#if defined(EFAC_HAVE_PCLMUL_KERNEL)

namespace {

// Reflected-domain constants: x^T mod P for the fold distances, plus the
// Barrett pair (P', mu).
alignas(16) constexpr std::uint64_t kFold512[2] = {0x0154442bd4,
                                                   0x01c6e41596};
alignas(16) constexpr std::uint64_t kFold128[2] = {0x01751997d0,
                                                   0x00ccaa009e};
alignas(16) constexpr std::uint64_t kFold64[2] = {0x0163cd6124, 0};
alignas(16) constexpr std::uint64_t kBarrett[2] = {0x01db710641,
                                                   0x01f7011641};

/// Folds `n` bytes (n >= 64, n % 16 == 0) into a 32-bit raw state.
__attribute__((target("pclmul,sse4.1"))) std::uint32_t fold_blocks(
    const std::uint8_t* p, std::size_t n, std::uint32_t state) {
  const __m128i* buf = reinterpret_cast<const __m128i*>(p);

  __m128i a = _mm_loadu_si128(buf + 0);
  __m128i b = _mm_loadu_si128(buf + 1);
  __m128i c = _mm_loadu_si128(buf + 2);
  __m128i d = _mm_loadu_si128(buf + 3);
  a = _mm_xor_si128(a, _mm_cvtsi32_si128(static_cast<int>(state)));
  buf += 4;
  n -= 64;

  __m128i k = _mm_load_si128(reinterpret_cast<const __m128i*>(kFold512));
  while (n >= 64) {
    const __m128i alo = _mm_clmulepi64_si128(a, k, 0x00);
    const __m128i blo = _mm_clmulepi64_si128(b, k, 0x00);
    const __m128i clo = _mm_clmulepi64_si128(c, k, 0x00);
    const __m128i dlo = _mm_clmulepi64_si128(d, k, 0x00);
    a = _mm_clmulepi64_si128(a, k, 0x11);
    b = _mm_clmulepi64_si128(b, k, 0x11);
    c = _mm_clmulepi64_si128(c, k, 0x11);
    d = _mm_clmulepi64_si128(d, k, 0x11);
    a = _mm_xor_si128(_mm_xor_si128(a, alo), _mm_loadu_si128(buf + 0));
    b = _mm_xor_si128(_mm_xor_si128(b, blo), _mm_loadu_si128(buf + 1));
    c = _mm_xor_si128(_mm_xor_si128(c, clo), _mm_loadu_si128(buf + 2));
    d = _mm_xor_si128(_mm_xor_si128(d, dlo), _mm_loadu_si128(buf + 3));
    buf += 4;
    n -= 64;
  }

  // 512 -> 128: fold b, c, d into a.
  k = _mm_load_si128(reinterpret_cast<const __m128i*>(kFold128));
  for (const __m128i next : {b, c, d}) {
    const __m128i lo = _mm_clmulepi64_si128(a, k, 0x00);
    a = _mm_clmulepi64_si128(a, k, 0x11);
    a = _mm_xor_si128(_mm_xor_si128(a, lo), next);
  }
  while (n >= 16) {
    const __m128i lo = _mm_clmulepi64_si128(a, k, 0x00);
    a = _mm_clmulepi64_si128(a, k, 0x11);
    a = _mm_xor_si128(_mm_xor_si128(a, lo), _mm_loadu_si128(buf));
    ++buf;
    n -= 16;
  }

  // 128 -> 64.
  const __m128i low32 = _mm_setr_epi32(~0, 0, ~0, 0);
  __m128i t = _mm_clmulepi64_si128(a, k, 0x10);
  a = _mm_xor_si128(_mm_srli_si128(a, 8), t);
  k = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(kFold64));
  t = _mm_srli_si128(a, 4);
  a = _mm_and_si128(a, low32);
  a = _mm_xor_si128(_mm_clmulepi64_si128(a, k, 0x00), t);

  // Barrett reduction 64 -> 32.
  k = _mm_load_si128(reinterpret_cast<const __m128i*>(kBarrett));
  t = _mm_and_si128(a, low32);
  t = _mm_clmulepi64_si128(t, k, 0x10);
  t = _mm_and_si128(t, low32);
  t = _mm_clmulepi64_si128(t, k, 0x00);
  a = _mm_xor_si128(a, t);
  return static_cast<std::uint32_t>(_mm_extract_epi32(a, 1));
}

std::uint32_t crc32_state_pclmul(const std::uint8_t* data, std::size_t n,
                                 std::uint32_t state) {
  const std::size_t body = n & ~std::size_t{15};
  if (body >= 64) {
    state = fold_blocks(data, body, state);
    data += body;
    n -= body;
  }
  return crc32_state_portable(data, n, state);
}

}  // namespace

CrcBackend probe_x86_backend() noexcept {
  if (__builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1")) {
    // Folding needs a 64-byte body to beat the table path.
    return CrcBackend{&crc32_state_pclmul, "pclmul", 64};
  }
  return CrcBackend{};
}

#else  // !EFAC_HAVE_PCLMUL_KERNEL

CrcBackend probe_x86_backend() noexcept { return CrcBackend{}; }

#endif

}  // namespace efac::checksum::detail
