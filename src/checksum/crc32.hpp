// Software CRC-32 (IEEE 802.3 polynomial, reflected), slicing-by-8.
//
// Used for object integrity verification exactly as the paper's systems do.
// The *computation* is real (torn payloads genuinely fail verification);
// the *virtual-time cost* charged per byte is a separate CostModel, tuned
// so that verifying a 4 KB value costs ≈4.4 µs as measured in the paper's
// Figure 2.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace efac::checksum {

/// CRC-32 of `data`, optionally continuing from a previous value
/// (pass the previous return value as `seed` for incremental use).
[[nodiscard]] std::uint32_t crc32(BytesView data, std::uint32_t seed = 0);

/// Virtual-time cost of computing a CRC over `bytes` bytes.
struct CrcCostModel {
  double per_byte_ns = 1.05;       ///< ≈4.3 µs for 4 KiB, per paper Fig. 2
  SimDuration fixed_ns = 60;       ///< call overhead / table warm-up

  [[nodiscard]] SimDuration cost(std::size_t bytes) const noexcept {
    return fixed_ns + static_cast<SimDuration>(std::llround(
                          per_byte_ns * static_cast<double>(bytes)));
  }
};

}  // namespace efac::checksum
