// CRC-32 (IEEE 802.3 polynomial, reflected) with runtime hardware
// dispatch.
//
// Used for object integrity verification exactly as the paper's systems
// do. The *computation* is real (torn payloads genuinely fail
// verification); the *virtual-time cost* charged per byte is a separate
// CostModel, tuned so that verifying a 4 KB value costs ≈4.4 µs as
// measured in the paper's Figure 2.
//
// crc32() picks the fastest kernel for the host at first use: PCLMULQDQ
// folding on x86-64, the CRC32 extension on ARMv8, and slicing-by-8
// everywhere else (also for buffers too small to amortize the vector
// setup). All kernels produce bit-identical results; crc32_software()
// pins the portable kernel so tests can cross-check the dispatched path.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace efac::checksum {

/// CRC-32 of `data`, optionally continuing from a previous value
/// (pass the previous return value as `seed` for incremental use).
/// Dispatches to the hardware kernel when available and profitable.
[[nodiscard]] std::uint32_t crc32(BytesView data, std::uint32_t seed = 0);

/// Same CRC via the portable slicing-by-8 kernel, regardless of host
/// support — the reference for hardware/software cross-checks.
[[nodiscard]] std::uint32_t crc32_software(BytesView data,
                                           std::uint32_t seed = 0);

/// Same CRC via the hardware kernel for any size (no profitability
/// cut-off); falls back to the portable kernel when the host has none.
[[nodiscard]] std::uint32_t crc32_hardware(BytesView data,
                                           std::uint32_t seed = 0);

/// True when a hardware kernel is available on this host.
[[nodiscard]] bool crc32_hw_available() noexcept;

/// Name of the kernel crc32() dispatches large buffers to:
/// "pclmul", "armv8-crc", or "portable".
[[nodiscard]] const char* crc32_backend() noexcept;

/// Process-wide byte counters for the dispatched crc32() entry point.
/// Plain (non-atomic) counters: the simulator is single-threaded.
/// Consumers that export metrics should publish deltas across a run, not
/// absolute values, so exports stay reproducible.
struct CrcCounters {
  std::uint64_t hw_bytes = 0;  ///< bytes checksummed by a hardware kernel
  std::uint64_t sw_bytes = 0;  ///< bytes checksummed by the portable kernel
};

/// Counters since process start (monotonic).
[[nodiscard]] const CrcCounters& crc_counters() noexcept;

/// Virtual-time cost of computing a CRC over `bytes` bytes.
struct CrcCostModel {
  double per_byte_ns = 1.05;       ///< ≈4.3 µs for 4 KiB, per paper Fig. 2
  SimDuration fixed_ns = 60;       ///< call overhead / table warm-up

  [[nodiscard]] SimDuration cost(std::size_t bytes) const noexcept {
    return fixed_ns + static_cast<SimDuration>(std::llround(
                          per_byte_ns * static_cast<double>(bytes)));
  }
};

}  // namespace efac::checksum
