#include "checksum/crc32.hpp"

#include <array>

#include "checksum/crc32_impl.hpp"

namespace efac::checksum {

namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected IEEE 802.3

struct Tables {
  // slicing-by-8: table[k][b] advances the CRC by (8 - k) trailing zero
  // bytes after byte b.
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  constexpr Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

constexpr Tables kTables{};

CrcCounters g_counters;

/// Probed once; the answer cannot change while the process runs.
const detail::CrcBackend& backend() noexcept {
  static const detail::CrcBackend kBackend = [] {
    detail::CrcBackend hw = detail::probe_x86_backend();
    if (hw.fn == nullptr) hw = detail::probe_arm_backend();
    return hw;
  }();
  return kBackend;
}

}  // namespace

namespace detail {

std::uint32_t crc32_state_portable(const std::uint8_t* p, std::size_t n,
                                   std::uint32_t crc) {
  // 8 bytes at a time via slicing-by-8.
  while (n >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    (static_cast<std::uint32_t>(p[1]) << 8) |
                                    (static_cast<std::uint32_t>(p[2]) << 16) |
                                    (static_cast<std::uint32_t>(p[3]) << 24));
    crc = kTables.t[7][lo & 0xFFu] ^ kTables.t[6][(lo >> 8) & 0xFFu] ^
          kTables.t[5][(lo >> 16) & 0xFFu] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace detail

std::uint32_t crc32(BytesView data, std::uint32_t seed) {
  const detail::CrcBackend& hw = backend();
  if (hw.fn != nullptr && data.size() >= hw.min_bytes) {
    g_counters.hw_bytes += data.size();
    return ~hw.fn(data.data(), data.size(), ~seed);
  }
  g_counters.sw_bytes += data.size();
  return ~detail::crc32_state_portable(data.data(), data.size(), ~seed);
}

std::uint32_t crc32_software(BytesView data, std::uint32_t seed) {
  return ~detail::crc32_state_portable(data.data(), data.size(), ~seed);
}

std::uint32_t crc32_hardware(BytesView data, std::uint32_t seed) {
  const detail::CrcBackend& hw = backend();
  if (hw.fn == nullptr) return crc32_software(data, seed);
  return ~hw.fn(data.data(), data.size(), ~seed);
}

bool crc32_hw_available() noexcept { return backend().fn != nullptr; }

const char* crc32_backend() noexcept { return backend().name; }

const CrcCounters& crc_counters() noexcept { return g_counters; }

}  // namespace efac::checksum
