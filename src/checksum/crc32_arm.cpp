// AArch64 CRC-32 kernel: the ARMv8 CRC32 extension computes the IEEE
// 802.3 (reflected) polynomial directly, eight bytes per instruction.
//
// Availability is probed at runtime via the Linux hwcaps; on non-Linux
// AArch64 hosts we only use the kernel when the compiler guarantees the
// extension at build time (__ARM_FEATURE_CRC32).
#include "checksum/crc32_impl.hpp"

#if defined(__aarch64__) && defined(__GNUC__)
#define EFAC_HAVE_ARM_CRC_KERNEL 1
#include <arm_acle.h>
#if defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1u << 7)
#endif
#endif
#endif

#include <cstring>

namespace efac::checksum::detail {

#if defined(EFAC_HAVE_ARM_CRC_KERNEL)

namespace {

__attribute__((target("+crc"))) std::uint32_t crc32_state_armv8(
    const std::uint8_t* data, std::size_t n, std::uint32_t state) {
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, data, 8);
    state = __crc32d(state, word);
    data += 8;
    n -= 8;
  }
  if (n >= 4) {
    std::uint32_t word;
    std::memcpy(&word, data, 4);
    state = __crc32w(state, word);
    data += 4;
    n -= 4;
  }
  while (n-- > 0) {
    state = __crc32b(state, *data++);
  }
  return state;
}

bool host_has_crc32() noexcept {
#if defined(__linux__)
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#elif defined(__ARM_FEATURE_CRC32)
  return true;
#else
  return false;
#endif
}

}  // namespace

CrcBackend probe_arm_backend() noexcept {
  if (host_has_crc32()) {
    // Profitable from the first whole word; 16 keeps tiny inputs on the
    // table path where call overhead dominates anyway.
    return CrcBackend{&crc32_state_armv8, "armv8-crc", 16};
  }
  return CrcBackend{};
}

#else  // !EFAC_HAVE_ARM_CRC_KERNEL

CrcBackend probe_arm_backend() noexcept { return CrcBackend{}; }

#endif

}  // namespace efac::checksum::detail
