// Internal interface between the crc32() dispatcher and its kernels.
//
// Every kernel advances a *raw* CRC state (already bit-inverted); the
// public entry points in crc32.cpp apply the ~seed-in / ~state-out
// convention once, so kernels compose for incremental use and for
// splitting one buffer between a vector body and a scalar tail.
#pragma once

#include <cstddef>
#include <cstdint>

namespace efac::checksum::detail {

/// Kernel signature shared by all backends.
using CrcStateFn = std::uint32_t (*)(const std::uint8_t* data, std::size_t n,
                                     std::uint32_t state);

/// Slicing-by-8 reference kernel; always available, also used by the
/// hardware kernels for sub-block tails.
std::uint32_t crc32_state_portable(const std::uint8_t* data, std::size_t n,
                                   std::uint32_t state);

/// A runtime-probed hardware kernel. `fn == nullptr` when the host CPU (or
/// the build target) lacks the instructions.
struct CrcBackend {
  CrcStateFn fn = nullptr;
  const char* name = "portable";
  std::size_t min_bytes = 0;  ///< below this the portable path wins
};

CrcBackend probe_x86_backend() noexcept;  ///< PCLMULQDQ folding
CrcBackend probe_arm_backend() noexcept;  ///< ARMv8 CRC32 instructions

}  // namespace efac::checksum::detail
