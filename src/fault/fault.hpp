// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan names a set of injection sites (torn writes, lost WRITE
// completions, RPC loss/delay, dropped persists, ...) and, per site, a
// deterministic firing rule: every Nth occurrence (period/phase), a seeded
// Bernoulli draw (probability), or both, bounded by skip/max_fires. Plans
// are plain text (see parse()/encode() and docs/FAULTS.md) so a failing
// CI run can be replayed from its BENCH_fault.json artifact.
//
// The Injector is consulted from the hot paths of the RDMA QP, the RPC
// connection and the NVM arena. With no plan configured, enabled() is
// false and every hook is a single predictable branch: no RNG draws, no
// counters, no extra events — seeded clean runs stay bit-identical.
//
// Crash+restart is *not* an Injector site: whole-server crashes are driven
// by the harness (bench/fault_matrix.cpp) from FaultPlan::crash_at_ns, via
// StoreBase::crash()/restart(), because only the harness can re-create
// clients and re-drive load afterwards.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "metrics/metrics.hpp"
#include "trace/event_log.hpp"

namespace efac::fault {

/// Where a fault can be injected. Keep to_string() in sync.
enum class Site : std::uint8_t {
  kWriteTorn = 0,         ///< awaited WRITE: payload truncated + ack lost
  kWriteDropCompletion,   ///< awaited WRITE: data lands, ack lost
  kWriteDuplicate,        ///< WRITE payload re-applied later (retransmit)
  kSendDrop,              ///< two-sided SEND / IMM notification lost
  kSendDelay,             ///< two-sided SEND / IMM notification delayed
  kSendDuplicate,         ///< two-sided SEND delivered twice
  kRespDrop,              ///< RPC response lost on the reverse path
  kRespDelay,             ///< RPC response delayed on the reverse path
  kPersistDrop,           ///< flush silently skipped (lost persist)
  kPersistDelay,          ///< flush deferred by delay_ns
  kCount,
};

inline constexpr std::size_t kSiteCount = static_cast<std::size_t>(Site::kCount);

[[nodiscard]] const char* to_string(Site site) noexcept;
/// Inverse of to_string(); returns false for unknown names.
[[nodiscard]] bool site_from_string(std::string_view name, Site& out) noexcept;

/// Firing rule for one site. A site fires on occurrence `i` (0-based,
/// counted after `skip`) when `i % period == phase % period`, or when the
/// per-site seeded RNG draws below `probability`; at most `max_fires`
/// times (0 = unlimited).
struct FaultSpec {
  double probability = 0.0;
  std::uint64_t period = 0;  ///< 0 disables the periodic rule
  std::uint64_t phase = 0;
  std::uint64_t skip = 0;    ///< ignore the first N occurrences entirely
  std::uint64_t max_fires = 0;
  /// Torn writes: fraction of the payload that still lands ([0, 1]).
  double magnitude = 0.5;
  /// Delay sites: extra latency; drop-completion sites: how long after the
  /// normal completion instant the requester reports the timeout.
  SimDuration delay_ns = 8 * timeconst::kMicrosecond;

  [[nodiscard]] bool active() const noexcept {
    return probability > 0.0 || period != 0;
  }
};

/// A complete, reproducible fault scenario.
struct FaultPlan {
  std::string name = "clean";
  std::uint64_t seed = 0xFA17;
  /// Harness-driven whole-server power failure (0 = none).
  SimTime crash_at_ns = 0;
  /// After the crash, attempt StoreBase::restart() and keep driving load.
  bool restart = false;
  /// True for plans that may legitimately lose acknowledged-durable data
  /// (lost persists); relaxes the durable-at-ack oracle in the harness.
  bool compromises_durability = false;
  std::array<FaultSpec, kSiteCount> sites{};

  [[nodiscard]] FaultSpec& at(Site s) noexcept {
    return sites[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const FaultSpec& at(Site s) const noexcept {
    return sites[static_cast<std::size_t>(s)];
  }
  /// True when the plan injects nothing at all (pass-through).
  [[nodiscard]] bool empty() const noexcept;

  /// Parse the line-oriented plan format (see docs/FAULTS.md):
  ///
  ///   # comment
  ///   name = torn-write
  ///   seed = 0xF0
  ///   crash_at_us = 350        (also: crash_at_ns)
  ///   restart = true
  ///   compromises_durability = false
  ///   fault write_torn every=5 phase=1 mag=0.5
  ///   fault resp_drop p=0.05 skip=2 max=10 delay_us=40
  [[nodiscard]] static Expected<FaultPlan> parse(std::string_view text);
  /// Serialize back to the parse() format (round-trips).
  [[nodiscard]] std::string encode() const;
};

/// Per-cluster fault decision engine. One per StoreBase; reached from the
/// QP/RPC hot paths through the Fabric and from the arena directly.
class Injector {
 public:
  Injector() = default;
  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Arm the injector. Registers one `fault.injected.<site>` counter per
  /// site in `registry`. Calling with an empty plan leaves it disabled.
  void configure(const FaultPlan& plan, metrics::MetricsRegistry& registry);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const FaultSpec& spec(Site s) const noexcept {
    return plan_.at(s);
  }

  /// Count one occurrence of `site` and decide whether the fault fires.
  /// Deterministic: depends only on the plan, the seed and the per-site
  /// occurrence index.
  [[nodiscard]] bool fire(Site site);

  /// Flight-recorder hook: fired faults emit kFault events through `rec`
  /// (which may be detached — emissions are then single-branch no-ops).
  void set_recorder(const trace::Recorder* rec) noexcept { recorder_ = rec; }

  /// Occurrences / fires observed so far (testing & reporting).
  [[nodiscard]] std::uint64_t occurrences(Site s) const noexcept {
    return state_[static_cast<std::size_t>(s)].occurrences;
  }
  [[nodiscard]] std::uint64_t fires(Site s) const noexcept {
    return state_[static_cast<std::size_t>(s)].fires;
  }

 private:
  struct SiteState {
    Rng rng{0};
    std::uint64_t occurrences = 0;
    std::uint64_t fires = 0;
    metrics::Counter* injected = nullptr;
  };

  FaultPlan plan_{};
  bool enabled_ = false;
  const trace::Recorder* recorder_ = nullptr;
  std::array<SiteState, kSiteCount> state_{};
};

}  // namespace efac::fault
