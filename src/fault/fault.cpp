#include "fault/fault.hpp"

#include <charconv>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace efac::fault {
namespace {

constexpr const char* kSiteNames[kSiteCount] = {
    "write_torn",     "write_drop_completion",
    "write_duplicate", "send_drop",
    "send_delay",     "send_duplicate",
    "resp_drop",      "resp_delay",
    "persist_drop",   "persist_delay",
};

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[nodiscard]] bool parse_u64(std::string_view s, std::uint64_t& out) {
  s = trim(s);
  if (s.empty()) return false;
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s.remove_prefix(2);
    base = 16;
  }
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), out, base);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

[[nodiscard]] bool parse_f64(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is not universally available; strtod on a
  // bounded copy is fine for config-sized input.
  std::string buf{s};
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

[[nodiscard]] bool parse_bool(std::string_view s, bool& out) {
  s = trim(s);
  if (s == "true" || s == "1") {
    out = true;
    return true;
  }
  if (s == "false" || s == "0") {
    out = false;
    return true;
  }
  return false;
}

[[nodiscard]] Status bad_plan(std::string_view line, const char* why) {
  return Status{StatusCode::kInvalidArgument,
                std::string{"fault plan: "} + why + ": '" +
                    std::string{line} + "'"};
}

/// Split on whitespace.
[[nodiscard]] std::vector<std::string_view> tokens(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

}  // namespace

const char* to_string(Site site) noexcept {
  const auto i = static_cast<std::size_t>(site);
  return i < kSiteCount ? kSiteNames[i] : "unknown";
}

bool site_from_string(std::string_view name, Site& out) noexcept {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if (name == kSiteNames[i]) {
      out = static_cast<Site>(i);
      return true;
    }
  }
  return false;
}

bool FaultPlan::empty() const noexcept {
  if (crash_at_ns != 0) return false;
  for (const FaultSpec& spec : sites) {
    if (spec.active()) return false;
  }
  return true;
}

Expected<FaultPlan> FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    line = trim(line);
    if (line.empty() || line.front() == '#') continue;

    if (line.substr(0, 6) == "fault ") {
      const std::vector<std::string_view> parts = tokens(line.substr(6));
      if (parts.empty()) return bad_plan(line, "missing site");
      Site site{};
      if (!site_from_string(parts[0], site)) {
        return bad_plan(line, "unknown site");
      }
      FaultSpec& spec = plan.at(site);
      for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::string_view kv = parts[i];
        const std::size_t eq = kv.find('=');
        if (eq == std::string_view::npos) return bad_plan(line, "expected k=v");
        const std::string_view k = kv.substr(0, eq);
        const std::string_view v = kv.substr(eq + 1);
        std::uint64_t u = 0;
        double d = 0.0;
        if (k == "p" && parse_f64(v, d)) {
          spec.probability = d;
        } else if (k == "every" && parse_u64(v, u)) {
          spec.period = u;
        } else if (k == "phase" && parse_u64(v, u)) {
          spec.phase = u;
        } else if (k == "skip" && parse_u64(v, u)) {
          spec.skip = u;
        } else if (k == "max" && parse_u64(v, u)) {
          spec.max_fires = u;
        } else if (k == "mag" && parse_f64(v, d)) {
          spec.magnitude = d;
        } else if (k == "delay_us" && parse_u64(v, u)) {
          spec.delay_ns =
              static_cast<SimDuration>(u) * timeconst::kMicrosecond;
        } else if (k == "delay_ns" && parse_u64(v, u)) {
          spec.delay_ns = static_cast<SimDuration>(u);
        } else {
          return bad_plan(line, "bad fault parameter");
        }
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) return bad_plan(line, "expected key = value");
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    std::uint64_t u = 0;
    bool b = false;
    if (key == "name") {
      plan.name = std::string{value};
    } else if (key == "seed" && parse_u64(value, u)) {
      plan.seed = u;
    } else if (key == "crash_at_ns" && parse_u64(value, u)) {
      plan.crash_at_ns = static_cast<SimTime>(u);
    } else if (key == "crash_at_us" && parse_u64(value, u)) {
      plan.crash_at_ns =
          static_cast<SimTime>(u) * timeconst::kMicrosecond;
    } else if (key == "restart" && parse_bool(value, b)) {
      plan.restart = b;
    } else if (key == "compromises_durability" && parse_bool(value, b)) {
      plan.compromises_durability = b;
    } else {
      return bad_plan(line, "unknown key");
    }
  }
  return plan;
}

std::string FaultPlan::encode() const {
  std::ostringstream out;
  out << "name = " << name << "\n";
  out << "seed = " << seed << "\n";
  if (crash_at_ns != 0) out << "crash_at_ns = " << crash_at_ns << "\n";
  if (restart) out << "restart = true\n";
  if (compromises_durability) out << "compromises_durability = true\n";
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const FaultSpec& spec = sites[i];
    if (!spec.active()) continue;
    out << "fault " << kSiteNames[i];
    if (spec.probability > 0.0) out << " p=" << spec.probability;
    if (spec.period != 0) out << " every=" << spec.period;
    if (spec.phase != 0) out << " phase=" << spec.phase;
    if (spec.skip != 0) out << " skip=" << spec.skip;
    if (spec.max_fires != 0) out << " max=" << spec.max_fires;
    out << " mag=" << spec.magnitude;
    out << " delay_ns=" << spec.delay_ns;
    out << "\n";
  }
  return std::move(out).str();
}

void Injector::configure(const FaultPlan& plan,
                         metrics::MetricsRegistry& registry) {
  plan_ = plan;
  enabled_ = !plan.empty();
  Rng root{plan.seed ^ 0xFA177EA57ULL};
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    state_[i].rng = root.fork();
    state_[i].occurrences = 0;
    state_[i].fires = 0;
    if (enabled_) {
      state_[i].injected = &registry.counter(
          std::string{"fault.injected."} + kSiteNames[i]);
    }
  }
}

bool Injector::fire(Site site) {
  if (!enabled_) return false;
  const FaultSpec& spec = plan_.at(site);
  if (!spec.active()) return false;
  SiteState& st = state_[static_cast<std::size_t>(site)];
  const std::uint64_t occ = st.occurrences++;
  // The Bernoulli draw happens on every counted occurrence so that the
  // per-site RNG stream is a pure function of the occurrence index.
  bool hit = spec.probability > 0.0 && st.rng.next_bool(spec.probability);
  if (occ < spec.skip) return false;
  if (spec.max_fires != 0 && st.fires >= spec.max_fires) return false;
  if (!hit && spec.period != 0 &&
      (occ - spec.skip) % spec.period == spec.phase % spec.period) {
    hit = true;
  }
  if (!hit) return false;
  ++st.fires;
  if (st.injected != nullptr) ++*st.injected;
  if (recorder_ != nullptr) {
    recorder_->emit(trace::EventType::kFault,
                    static_cast<std::uint8_t>(site), occ);
  }
  return true;
}

}  // namespace efac::fault
