// Happens-before instrumentation interface.
//
// The conflict sanitizer (efac::analysis::Checker) needs two things from
// the simulation core: to know which *actor* the currently-executing event
// belongs to, and to see a release/acquire edge whenever a sync primitive
// hands control (and therefore memory visibility) from one actor to
// another. This header defines the abstract hook interface so that sim/
// never depends on analysis/ — the checker implements HbHooks and attaches
// itself via Simulator::set_hb_hooks().
//
// Actor id 0 is reserved for "untracked" contexts (the test harness, bench
// drivers): accesses made under actor 0 are invisible to the checker, so
// oracle reads never count as races.
#pragma once

#include <cstdint>
#include <vector>

namespace efac::sim {

/// A vector clock: index = actor id, value = the latest epoch of that
/// actor known to the clock's owner. Missing entries mean epoch 0
/// ("nothing from that actor observed yet").
using VectorClock = std::vector<std::uint64_t>;

/// Hooks the Simulator and the sync primitives call when a conflict
/// checker is attached. All methods are branch-guarded at the call sites
/// (`if (hb != nullptr)`), so a run without a checker pays one pointer
/// test per event and nothing else.
class HbHooks {
 public:
  virtual ~HbHooks() = default;

  /// Actor the currently-executing event is attributed to (0 = untracked).
  [[nodiscard]] virtual std::uint32_t current_actor() const noexcept = 0;
  virtual void set_current_actor(std::uint32_t actor) noexcept = 0;

  /// Release half of a release/acquire pair: merge the current actor's
  /// clock into `into`, then advance the actor's own epoch so later writes
  /// are not covered by this edge.
  virtual void release(VectorClock& into) = 0;

  /// Acquire half: merge `from` into the current actor's clock.
  virtual void acquire(const VectorClock& from) = 0;
};

}  // namespace efac::sim
