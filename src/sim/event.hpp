// A scheduled simulator event: a (time, sequence) key plus a tagged small
// callable.
//
// The fast case — the vast majority of traffic: delays elapsing, verb
// completions, sync-primitive wake-ups — is a bare coroutine handle: one
// pointer in the inline buffer and a null ops table, so construction,
// moves and dispatch never allocate or make an indirect call beyond the
// resumption itself.
//
// Plain callbacks are stored in the same inline buffer when they fit
// (kInlineBytes covers every callback the library schedules, including
// RDMA message delivery with its ~56-byte captured payload); oversized or
// over-aligned callables are boxed on the heap exactly once. This replaces
// the previous std::function member, which heap-allocated for any capture
// beyond two pointers.
//
// Destroying an un-fired event releases callback state but never destroys
// coroutine frames — those are owned by their root tasks (see Simulator).
#pragma once

#include <coroutine>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "common/types.hpp"

namespace efac::sim {

class Event {
 public:
  static constexpr std::size_t kInlineBytes = 56;
  static constexpr std::size_t kInlineAlign = 16;

  [[nodiscard]] static Event coroutine(SimTime t, std::uint64_t seq,
                                       std::coroutine_handle<> h) noexcept {
    Event e{t, seq};
    ::new (static_cast<void*>(e.buf_)) void*(h.address());
    return e;
  }

  template <typename F>
  [[nodiscard]] static Event callback(SimTime t, std::uint64_t seq, F&& fn) {
    using Callable = std::decay_t<F>;
    Event e{t, seq};
    if constexpr (sizeof(Callable) <= kInlineBytes &&
                  alignof(Callable) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<Callable>) {
      ::new (static_cast<void*>(e.buf_)) Callable(std::forward<F>(fn));
      e.ops_ = &InlineOps<Callable>::kOps;
    } else {
      ::new (static_cast<void*>(e.buf_))
          Callable*(new Callable(std::forward<F>(fn)));
      e.ops_ = &BoxedOps<Callable>::kOps;
    }
    return e;
  }

  Event() noexcept = default;
  Event(Event&& other) noexcept : t_(other.t_), seq_(other.seq_) {
    take_payload(other);
  }
  Event& operator=(Event&& other) noexcept {
    if (this != &other) {
      reset();
      t_ = other.t_;
      seq_ = other.seq_;
      take_payload(other);
    }
    return *this;
  }
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;
  ~Event() { reset(); }

  [[nodiscard]] SimTime time() const noexcept { return t_; }
  [[nodiscard]] std::uint64_t seq() const noexcept { return seq_; }

  /// Resume the coroutine or invoke the callback. Consumes callback state;
  /// an event must not be fired twice.
  void fire() {
    if (ops_ != nullptr) {
      const Ops* ops = std::exchange(ops_, nullptr);
      ops->invoke_destroy(buf_);  // destroys state even if the call throws
    } else {
      void* address;
      std::memcpy(&address, buf_, sizeof(address));
      std::coroutine_handle<>::from_address(address).resume();
    }
  }

 private:
  struct Ops {
    void (*invoke_destroy)(void* buf);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* buf) noexcept;
  };

  template <typename F>
  struct InlineOps {
    static F* at(void* buf) noexcept {
      return std::launder(reinterpret_cast<F*>(buf));
    }
    static void invoke_destroy(void* buf) {
      F* fn = at(buf);
      struct Guard {
        F* fn;
        ~Guard() { fn->~F(); }
      } guard{fn};
      (*fn)();
    }
    static void relocate(void* dst, void* src) noexcept {
      F* from = at(src);
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void destroy(void* buf) noexcept { at(buf)->~F(); }
    static constexpr Ops kOps{&invoke_destroy, &relocate, &destroy};
  };

  template <typename F>
  struct BoxedOps {
    static F* owner(void* buf) noexcept {
      F* fn;
      std::memcpy(&fn, buf, sizeof(fn));
      return fn;
    }
    static void invoke_destroy(void* buf) {
      std::unique_ptr<F> fn{owner(buf)};
      (*fn)();
    }
    static void relocate(void* dst, void* src) noexcept {
      std::memcpy(dst, src, sizeof(F*));
    }
    static void destroy(void* buf) noexcept { delete owner(buf); }
    static constexpr Ops kOps{&invoke_destroy, &relocate, &destroy};
  };

  Event(SimTime t, std::uint64_t seq) noexcept : t_(t), seq_(seq) {}

  void take_payload(Event& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = std::exchange(other.ops_, nullptr);
      ops_->relocate(buf_, other.buf_);
    } else {
      ops_ = nullptr;
      std::memcpy(buf_, other.buf_, sizeof(void*));  // coroutine handle
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  SimTime t_ = 0;
  std::uint64_t seq_ = 0;
  const Ops* ops_ = nullptr;  ///< null: buf_ holds a coroutine handle
  alignas(kInlineAlign) unsigned char buf_[kInlineBytes];
};

}  // namespace efac::sim
