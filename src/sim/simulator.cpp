#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace efac::sim {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Strict-weak order on the far heap: earliest (time, seq) at the root.
bool event_less(const Event& a, const Event& b) noexcept {
  if (a.time() != b.time()) return a.time() < b.time();
  return a.seq() < b.seq();
}

/// Eager, self-destroying coroutine used to drive a detached Task<void>.
/// Suspends at the start so the Simulator can register the root frame
/// before any user code runs (avoiding a register/finish race).
struct DetachedDriver {
  struct promise_type {
    DetachedDriver get_return_object() noexcept {
      return {std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      // The driver body catches everything; anything reaching here is a
      // bug in the driver itself.
      std::terminate();
    }
  };
  std::coroutine_handle<promise_type> handle;
};

DetachedDriver drive(Simulator& sim, Task<void> task, std::uint64_t id) {
  try {
    co_await std::move(task);
  } catch (...) {
    sim.record_detached_exception(std::current_exception());
  }
  sim.root_finished(id);
}

}  // namespace

Simulator::Simulator() : wheel_(kWheelSpan) {}

Simulator::~Simulator() {
  // Drop the queued events first: their handles point into frames owned
  // (directly or transitively) by the root frames below, and become
  // dangling once those are destroyed.
  for (std::vector<Event>& bucket : wheel_) bucket.clear();
  far_.clear();
  for (auto& [id, handle] : roots_) {
    handle.destroy();  // recursively destroys children via Task destructors
  }
  roots_.clear();
}

void Simulator::enqueue(Event&& e) {
  if (hb_ != nullptr) {
    // Attribute the event to the actor scheduling it; dispatch() restores
    // the attribution so everything a resumed coroutine (or callback) does
    // is charged to the right clock domain.
    const std::uint32_t actor = hb_->current_actor();
    if (actor != 0) event_actor_.emplace(e.seq(), actor);
  }
  ++pending_;
  if (e.time() - now_ < kWheelSpan) {
    // One bucket == one instant within the horizon, so appending keeps the
    // bucket in (time, seq) order by construction.
    const std::size_t idx = static_cast<std::size_t>(e.time()) & kWheelMask;
    wheel_[idx].push_back(std::move(e));
    occupancy_.set(idx);
  } else {
    far_.push_back(std::move(e));
    sift_up_far(far_.size() - 1);
  }
}

void Simulator::sift_up_far(std::size_t i) {
  Event e = std::move(far_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!event_less(e, far_[parent])) break;
    far_[i] = std::move(far_[parent]);
    i = parent;
  }
  far_[i] = std::move(e);
}

Event Simulator::pop_far() {
  Event out = std::move(far_.front());
  Event last = std::move(far_.back());
  far_.pop_back();
  if (!far_.empty()) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= far_.size()) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, far_.size());
      for (std::size_t c = first + 1; c < end; ++c) {
        if (event_less(far_[c], far_[best])) best = c;
      }
      if (!event_less(far_[best], last)) break;
      far_[i] = std::move(far_[best]);
      i = best;
    }
    far_[i] = std::move(last);
  }
  return out;
}

void Simulator::close_active_bucket() {
  wheel_[active_bucket_].clear();  // keeps capacity for reuse
  occupancy_.clear(active_bucket_);
  active_bucket_ = kNoBucket;
}

SimTime Simulator::peek_time() {
  if (active_bucket_ != kNoBucket) {
    // The active bucket holds events at exactly now_ (the instant being
    // drained); the far heap cannot hold anything earlier or equal (see
    // step_one's heap-first rule).
    if (active_cursor_ < wheel_[active_bucket_].size()) return now_;
    close_active_bucket();
  }
  const std::size_t start = static_cast<std::size_t>(now_) & kWheelMask;
  const std::size_t idx = occupancy_.find_wrapped(start);
  SimTime bucket_time = kNoTime;
  if (idx != Occupancy::npos) {
    bucket_time = now_ + static_cast<SimTime>((idx - start) & kWheelMask);
  }
  if (!far_.empty() && far_.front().time() < bucket_time) {
    return far_.front().time();
  }
  return bucket_time;
}

void Simulator::spawn(Task<void> task) {
  EFAC_CHECK_MSG(task.valid(), "spawning an empty task");
  const std::uint64_t id = next_root_id_++;
  DetachedDriver driver = drive(*this, std::move(task), id);
  roots_.emplace(id, driver.handle);
  driver.handle.resume();  // run until first suspension (or completion)
  maybe_rethrow();
}

void Simulator::record_detached_exception(std::exception_ptr e) noexcept {
  if (!pending_exception_) pending_exception_ = e;
}

void Simulator::maybe_rethrow() {
  if (pending_exception_) {
    std::exception_ptr e = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Simulator::dispatch(Event& e) {
  now_ = e.time();
  ++events_processed_;
  --pending_;
  dispatch_hash_ = (dispatch_hash_ ^ e.time()) * kFnvPrime;
  dispatch_hash_ = (dispatch_hash_ ^ e.seq()) * kFnvPrime;
  if (hb_ != nullptr) {
    const auto it = event_actor_.find(e.seq());
    if (it != event_actor_.end()) {
      hb_->set_current_actor(it->second);
      event_actor_.erase(it);
    } else {
      hb_->set_current_actor(0);
    }
  }
  e.fire();
}

void Simulator::schedule_actor_resume(std::uint32_t actor,
                                      std::coroutine_handle<> h) {
  if (hb_ == nullptr) {
    schedule_after(0, h);
    return;
  }
  // One callback event in place of one coroutine event: same instant, same
  // sequence number, identical dispatch_hash(). The callback overrides the
  // dispatch attribution with the waiter's actor before resuming.
  call_at(now_, [hb = hb_, actor, h] {
    hb->set_current_actor(actor);
    h.resume();
  });
}

bool Simulator::step_one() {
  // Fast path: keep draining the bucket for the current instant. Events
  // appended to it during dispatch (delay(0), sync wake-ups) are picked up
  // by the cursor; re-index every access because the vector may grow.
  if (active_bucket_ != kNoBucket) {
    if (active_cursor_ < wheel_[active_bucket_].size()) {
      Event e = std::move(wheel_[active_bucket_][active_cursor_++]);
      ++fast_path_;
      dispatch(e);
      return true;
    }
    close_active_bucket();
  }

  const std::size_t start = static_cast<std::size_t>(now_) & kWheelMask;
  const std::size_t idx = occupancy_.find_wrapped(start);
  SimTime bucket_time = kNoTime;
  if (idx != Occupancy::npos) {
    bucket_time = now_ + static_cast<SimTime>((idx - start) & kWheelMask);
  }

  // Heap-first at ties: a far event at time T was scheduled while
  // T - now >= kWheelSpan, i.e. strictly before any wheel event at T could
  // be scheduled, so its sequence number is smaller.
  if (!far_.empty() && far_.front().time() <= bucket_time) {
    Event e = pop_far();
    ++heap_fallback_;
    dispatch(e);
    return true;
  }
  if (bucket_time == kNoTime) return false;

  active_bucket_ = idx;
  active_cursor_ = 1;
  Event e = std::move(wheel_[idx].front());
  ++fast_path_;
  dispatch(e);
  return true;
}

bool Simulator::step() {
  if (!step_one()) return false;
  maybe_rethrow();
  return true;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime deadline) {
  EFAC_CHECK_MSG(deadline >= now_, "run_until into the past");
  std::size_t n = 0;
  for (;;) {
    const SimTime t = peek_time();
    if (t == kNoTime || t > deadline) break;
    step_one();
    maybe_rethrow();
    ++n;
  }
  now_ = deadline;
  return n;
}

}  // namespace efac::sim
