#include "sim/simulator.hpp"

#include "common/assert.hpp"

namespace efac::sim {

namespace {

/// Eager, self-destroying coroutine used to drive a detached Task<void>.
/// Suspends at the start so the Simulator can register the root frame
/// before any user code runs (avoiding a register/finish race).
struct DetachedDriver {
  struct promise_type {
    DetachedDriver get_return_object() noexcept {
      return {std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      // The driver body catches everything; anything reaching here is a
      // bug in the driver itself.
      std::terminate();
    }
  };
  std::coroutine_handle<promise_type> handle;
};

DetachedDriver drive(Simulator& sim, Task<void> task, std::uint64_t id) {
  try {
    co_await std::move(task);
  } catch (...) {
    sim.record_detached_exception(std::current_exception());
  }
  sim.root_finished(id);
}

}  // namespace

Simulator::~Simulator() {
  // Destroy the queue first: its handles point into frames owned (directly
  // or transitively) by the root frames below, and become dangling once
  // those are destroyed.
  while (!queue_.empty()) queue_.pop();
  for (auto& [id, handle] : roots_) {
    handle.destroy();  // recursively destroys children via Task destructors
  }
  roots_.clear();
}

void Simulator::schedule_at(SimTime t, std::coroutine_handle<> h) {
  EFAC_CHECK_MSG(t >= now_, "scheduling into the past");
  EFAC_CHECK(h);
  queue_.push(Event{t, next_seq_++, h, nullptr});
}

void Simulator::call_at(SimTime t, std::function<void()> fn) {
  EFAC_CHECK_MSG(t >= now_, "scheduling into the past");
  EFAC_CHECK(fn != nullptr);
  queue_.push(Event{t, next_seq_++, nullptr, std::move(fn)});
}

void Simulator::spawn(Task<void> task) {
  EFAC_CHECK_MSG(task.valid(), "spawning an empty task");
  const std::uint64_t id = next_root_id_++;
  DetachedDriver driver = drive(*this, std::move(task), id);
  roots_.emplace(id, driver.handle);
  driver.handle.resume();  // run until first suspension (or completion)
  maybe_rethrow();
}

void Simulator::record_detached_exception(std::exception_ptr e) noexcept {
  if (!pending_exception_) pending_exception_ = e;
}

void Simulator::maybe_rethrow() {
  if (pending_exception_) {
    std::exception_ptr e = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Simulator::dispatch(Event& e) {
  now_ = e.t;
  ++events_processed_;
  if (e.handle) {
    e.handle.resume();
  } else {
    e.callback();
  }
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event e = queue_.top();
  queue_.pop();
  dispatch(e);
  maybe_rethrow();
  return true;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime deadline) {
  EFAC_CHECK_MSG(deadline >= now_, "run_until into the past");
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().t <= deadline) {
    Event e = queue_.top();
    queue_.pop();
    dispatch(e);
    maybe_rethrow();
    ++n;
  }
  now_ = deadline;
  return n;
}

}  // namespace efac::sim
