// Deterministic discrete-event simulator with a virtual nanosecond clock.
//
// The Simulator owns a time-ordered event queue. Events are either
// coroutine resumptions (the common case: a delay elapsing, a verb
// completing) or plain callbacks, stored as allocation-free tagged small
// callables (see sim/event.hpp). Two events scheduled for the same instant
// fire in FIFO order of scheduling, which makes every run bit-reproducible;
// dispatch_hash() folds the dispatch order into a checksum so tests can
// prove it.
//
// The queue is two-level, tuned for the simulation's actual deadline
// distribution (fixed RDMA/NVM latencies a few microseconds out):
//
//   * a bucket wheel of kWheelSpan one-nanosecond buckets covering
//     [now, now + kWheelSpan): O(1) insert, O(1) next-event lookup via a
//     hierarchical occupancy bitmap, in-order append within a bucket (one
//     bucket == one instant, so append order IS (time, seq) order);
//   * a 4-ary min-heap on (time, seq) for far timers (object timeouts,
//     settle periods) beyond the wheel horizon.
//
// Far events are dispatched straight from the heap when due. At an instant
// present in both structures the heap drains first: a heap event at time T
// was necessarily scheduled while T - now >= kWheelSpan, i.e. before any
// wheel event at T, so heap-first preserves global same-time FIFO.
//
// Actors are coroutines returning sim::Task<>; detached root actors are
// started with spawn(). The Simulator tracks unfinished root frames and
// destroys them on destruction so that abandoned actors (e.g. an infinite
// background-thread loop stopped by run_until) do not leak.
#pragma once

#include <array>
#include <bit>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "sim/event.hpp"
#include "sim/hb.hpp"
#include "sim/task.hpp"

namespace efac::sim {

class Simulator {
 public:
  /// Wheel horizon in nanoseconds (and buckets: one bucket per ns).
  static constexpr std::size_t kWheelBits = 13;
  static constexpr std::size_t kWheelSpan = std::size_t{1} << kWheelBits;

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current virtual time (ns).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule a coroutine resumption at absolute virtual time `t` (>= now).
  void schedule_at(SimTime t, std::coroutine_handle<> h) {
    EFAC_CHECK_MSG(t >= now_, "scheduling into the past");
    EFAC_CHECK(h);
    enqueue(Event::coroutine(t, next_seq_++, h));
  }

  /// Schedule a coroutine resumption `d` ns from now.
  void schedule_after(SimDuration d, std::coroutine_handle<> h) {
    schedule_at(now_ + d, h);
  }

  /// Schedule a plain callback at absolute virtual time `t`. Any callable;
  /// small captures are stored inline in the event (no allocation).
  template <typename F>
  void call_at(SimTime t, F&& fn) {
    static_assert(std::is_invocable_v<std::decay_t<F>&>);
    EFAC_CHECK_MSG(t >= now_, "scheduling into the past");
    if constexpr (std::is_constructible_v<bool, const std::decay_t<F>&>) {
      EFAC_CHECK(static_cast<bool>(fn));  // e.g. an empty std::function
    }
    enqueue(Event::callback(t, next_seq_++, std::forward<F>(fn)));
  }

  /// Schedule a plain callback `d` ns from now.
  template <typename F>
  void call_after(SimDuration d, F&& fn) {
    call_at(now_ + d, std::forward<F>(fn));
  }

  /// Start a detached root actor. Runs synchronously until its first
  /// suspension point.
  void spawn(Task<void> task);

  /// Process one event. Returns false if the queue is empty.
  bool step();

  /// Run until the event queue drains. Returns the number of events
  /// processed. Rethrows the first exception escaping a detached task.
  std::size_t run();

  /// Process every event with timestamp <= deadline, then advance the clock
  /// to exactly `deadline`. Events beyond the deadline stay queued.
  std::size_t run_until(SimTime deadline);

  /// Number of spawned root actors that have not yet finished.
  [[nodiscard]] std::size_t active_root_tasks() const noexcept {
    return roots_.size();
  }

  /// Number of events waiting in the queue.
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return pending_;
  }

  /// Total events processed since construction.
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }

  /// Events dispatched from the bucket wheel (near-future fast path).
  [[nodiscard]] std::uint64_t fast_path_dispatches() const noexcept {
    return fast_path_;
  }

  /// Events dispatched from the far-timer 4-ary heap.
  [[nodiscard]] std::uint64_t heap_fallback_dispatches() const noexcept {
    return heap_fallback_;
  }

  /// Order-sensitive FNV-1a fold of every dispatched (time, seq) pair.
  /// Two runs of the same seeded workload must produce identical hashes —
  /// the determinism test's witness for the scheduler rewrite.
  [[nodiscard]] std::uint64_t dispatch_hash() const noexcept {
    return dispatch_hash_;
  }

  /// Attach happens-before hooks (the conflict sanitizer). With hooks
  /// attached, every scheduled event remembers the actor that scheduled it
  /// and restores that attribution at dispatch. nullptr detaches; with no
  /// hooks every instrumentation site reduces to one pointer test.
  void set_hb_hooks(HbHooks* hb) noexcept { hb_ = hb; }
  [[nodiscard]] HbHooks* hb_hooks() const noexcept { return hb_; }

  /// Trace attribution context of the currently-executing client op.
  ///
  /// Overlapping async client ops interleave through the event queue, so
  /// the flight recorder's per-op ids must follow whichever op's coroutine
  /// is actually running. The active op publishes {domain, op} here (domain
  /// is the owning trace log, kept opaque at this layer); every awaiter
  /// that parks a coroutine captures the context at suspension and
  /// republishes it on resumption. Pure bookkeeping: it never schedules
  /// and never draws RNG, so the dispatch schedule (and dispatch_hash())
  /// is bit-identical with or without ops in flight.
  struct OpContext {
    const void* domain = nullptr;
    std::uint32_t op = 0;

    friend bool operator==(const OpContext&, const OpContext&) = default;
  };
  [[nodiscard]] OpContext op_context() const noexcept { return op_ctx_; }
  void set_op_context(OpContext ctx) noexcept { op_ctx_ = ctx; }

  /// Resume `h` at the current instant attributed to `actor` (sync
  /// primitive wake-ups: the waiter must run under its own actor, not the
  /// releaser's). With no hooks attached this is exactly
  /// schedule_after(0, h); with hooks it consumes the same single sequence
  /// number at the same instant, so dispatch_hash() is identical either
  /// way — the determinism witness for the sanitizer.
  void schedule_actor_resume(std::uint32_t actor, std::coroutine_handle<> h);

  /// Used by the detached-task driver; not for general use.
  void record_detached_exception(std::exception_ptr e) noexcept;
  void root_finished(std::uint64_t id) noexcept { roots_.erase(id); }

 private:
  static constexpr std::size_t kWheelMask = kWheelSpan - 1;
  static constexpr std::size_t kNoBucket = ~std::size_t{0};
  static constexpr SimTime kNoTime = ~SimTime{0};

  /// Hierarchical occupancy bitmap over the wheel: find-next-set-bit in a
  /// handful of word operations regardless of how sparse the timeline is.
  class Occupancy {
   public:
    static constexpr std::size_t npos = ~std::size_t{0};

    void set(std::size_t i) noexcept {
      l0_[i >> 6] |= bit(i & 63);
      l1_[i >> 12] |= bit((i >> 6) & 63);
      l2_ |= bit(i >> 12);
    }
    void clear(std::size_t i) noexcept {
      const std::size_t w = i >> 6;
      if ((l0_[w] &= ~bit(i & 63)) == 0) {
        const std::size_t g = w >> 6;
        if ((l1_[g] &= ~bit(w & 63)) == 0) l2_ &= ~bit(g);
      }
    }
    /// Lowest set index >= start, or npos.
    [[nodiscard]] std::size_t find_from(std::size_t start) const noexcept {
      const std::size_t w0 = start >> 6;
      if (const std::uint64_t word = l0_[w0] & (~std::uint64_t{0}
                                                << (start & 63))) {
        return (w0 << 6) + static_cast<std::size_t>(std::countr_zero(word));
      }
      const std::size_t g0 = w0 >> 6;
      if (const std::uint64_t gw = l1_[g0] & bits_above(w0 & 63)) {
        const std::size_t w =
            (g0 << 6) + static_cast<std::size_t>(std::countr_zero(gw));
        return (w << 6) + static_cast<std::size_t>(std::countr_zero(l0_[w]));
      }
      if (const std::uint64_t top = l2_ & bits_above(g0)) {
        const std::size_t g = static_cast<std::size_t>(std::countr_zero(top));
        const std::size_t w =
            (g << 6) + static_cast<std::size_t>(std::countr_zero(l1_[g]));
        return (w << 6) + static_cast<std::size_t>(std::countr_zero(l0_[w]));
      }
      return npos;
    }
    /// Lowest set index in cyclic order starting from `start`, or npos.
    [[nodiscard]] std::size_t find_wrapped(std::size_t start) const noexcept {
      const std::size_t i = find_from(start);
      if (i != npos || start == 0) return i;
      return find_from(0);
    }

   private:
    static constexpr std::uint64_t bit(std::size_t b) noexcept {
      return std::uint64_t{1} << b;
    }
    /// Bits strictly above position b (empty mask for b == 63).
    static constexpr std::uint64_t bits_above(std::size_t b) noexcept {
      return b >= 63 ? 0 : ~std::uint64_t{0} << (b + 1);
    }

    std::array<std::uint64_t, kWheelSpan / 64> l0_{};
    std::array<std::uint64_t, kWheelSpan / 4096> l1_{};
    std::uint64_t l2_ = 0;
  };

  void enqueue(Event&& e);
  bool step_one();
  /// Timestamp of the next event (kNoTime if none). Closes an exhausted
  /// active bucket as a side effect, hence non-const.
  SimTime peek_time();
  void close_active_bucket();
  Event pop_far();
  void sift_up_far(std::size_t i);
  void dispatch(Event& e);
  void maybe_rethrow();

  std::vector<std::vector<Event>> wheel_;  ///< one bucket per ns of horizon
  Occupancy occupancy_;
  std::vector<Event> far_;  ///< 4-ary min-heap on (time, seq)
  std::size_t pending_ = 0;
  std::size_t active_bucket_ = kNoBucket;  ///< bucket being drained
  std::size_t active_cursor_ = 0;          ///< next event within it

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_root_id_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t fast_path_ = 0;
  std::uint64_t heap_fallback_ = 0;
  std::uint64_t dispatch_hash_ = 0xcbf29ce484222325ull;  // FNV-1a offset
  std::unordered_map<std::uint64_t, std::coroutine_handle<>> roots_;
  std::exception_ptr pending_exception_;
  HbHooks* hb_ = nullptr;
  OpContext op_ctx_{};
  /// seq -> scheduling actor; populated only while hooks are attached (and
  /// only for non-zero actors), consumed at dispatch.
  std::unordered_map<std::uint64_t, std::uint32_t> event_actor_;
};

/// Awaitable that suspends the current coroutine for `d` virtual ns.
/// `co_await delay(sim, 0)` yields to other events already due now.
struct DelayAwaiter {
  Simulator& sim;
  SimDuration duration;
  Simulator::OpContext saved{};
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    saved = sim.op_context();
    sim.schedule_after(duration, h);
  }
  void await_resume() const noexcept { sim.set_op_context(saved); }
};

inline DelayAwaiter delay(Simulator& sim, SimDuration d) { return {sim, d}; }

}  // namespace efac::sim
