// Deterministic discrete-event simulator with a virtual nanosecond clock.
//
// The Simulator owns a time-ordered event queue. Events are either coroutine
// resumptions (the common case: a delay elapsing, a verb completing) or
// plain callbacks. Two events scheduled for the same instant fire in FIFO
// order of scheduling, which makes every run bit-reproducible.
//
// Actors are coroutines returning sim::Task<>; detached root actors are
// started with spawn(). The Simulator tracks unfinished root frames and
// destroys them on destruction so that abandoned actors (e.g. an infinite
// background-thread loop stopped by run_until) do not leak.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "sim/task.hpp"

namespace efac::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current virtual time (ns).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule a coroutine resumption at absolute virtual time `t` (>= now).
  void schedule_at(SimTime t, std::coroutine_handle<> h);

  /// Schedule a coroutine resumption `d` ns from now.
  void schedule_after(SimDuration d, std::coroutine_handle<> h) {
    schedule_at(now_ + d, h);
  }

  /// Schedule a plain callback at absolute virtual time `t`.
  void call_at(SimTime t, std::function<void()> fn);

  /// Schedule a plain callback `d` ns from now.
  void call_after(SimDuration d, std::function<void()> fn) {
    call_at(now_ + d, std::move(fn));
  }

  /// Start a detached root actor. Runs synchronously until its first
  /// suspension point.
  void spawn(Task<void> task);

  /// Process one event. Returns false if the queue is empty.
  bool step();

  /// Run until the event queue drains. Returns the number of events
  /// processed. Rethrows the first exception escaping a detached task.
  std::size_t run();

  /// Process every event with timestamp <= deadline, then advance the clock
  /// to exactly `deadline`. Events beyond the deadline stay queued.
  std::size_t run_until(SimTime deadline);

  /// Number of spawned root actors that have not yet finished.
  [[nodiscard]] std::size_t active_root_tasks() const noexcept {
    return roots_.size();
  }

  /// Number of events waiting in the queue.
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }

  /// Total events processed since construction.
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }

  /// Used by the detached-task driver; not for general use.
  void record_detached_exception(std::exception_ptr e) noexcept;
  void root_finished(std::uint64_t id) noexcept { roots_.erase(id); }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    std::coroutine_handle<> handle;   // exactly one of handle / callback set
    std::function<void()> callback;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void dispatch(Event& e);
  void maybe_rethrow();

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_root_id_ = 0;
  std::uint64_t events_processed_ = 0;
  std::unordered_map<std::uint64_t, std::coroutine_handle<>> roots_;
  std::exception_ptr pending_exception_;
};

/// Awaitable that suspends the current coroutine for `d` virtual ns.
/// `co_await delay(sim, 0)` yields to other events already due now.
struct DelayAwaiter {
  Simulator& sim;
  SimDuration duration;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    sim.schedule_after(duration, h);
  }
  void await_resume() const noexcept {}
};

inline DelayAwaiter delay(Simulator& sim, SimDuration d) { return {sim, d}; }

}  // namespace efac::sim
