// Synchronization primitives for simulation actors.
//
// All primitives resume waiters *through the event queue* (at the current
// virtual instant) rather than inline. That keeps host-stack depth bounded
// and makes wake-up ordering deterministic and FIFO.
//
//   OneShot<T>  — single-producer/single-consumer future (RPC responses,
//                 verb completions).
//   Gate        — manual-reset broadcast event (log-cleaning start/stop,
//                 server readiness).
//   Semaphore   — counting semaphore with FIFO hand-off (server CPU cores).
//   Channel<T>  — unbounded FIFO queue with awaitable pop (request queues).
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "common/assert.hpp"
#include "sim/simulator.hpp"

namespace efac::sim {

/// Single-value future. Exactly one set(); at most one concurrent waiter.
template <typename T>
class OneShot {
 public:
  explicit OneShot(Simulator& sim) : sim_(sim) {}
  OneShot(const OneShot&) = delete;
  OneShot& operator=(const OneShot&) = delete;

  /// Fulfil the future. The waiter (if any) resumes at the current instant.
  void set(T value) {
    EFAC_CHECK_MSG(!value_.has_value(), "OneShot set twice");
    value_.emplace(std::move(value));
    if (waiter_) {
      sim_.schedule_after(0, std::exchange(waiter_, {}));
    }
  }

  [[nodiscard]] bool ready() const noexcept { return value_.has_value(); }

  /// Awaitable: suspends until set(), then yields the value (moved out).
  auto wait() {
    struct Awaiter {
      OneShot& self;
      bool await_ready() const noexcept { return self.value_.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        EFAC_CHECK_MSG(!self.waiter_, "OneShot already has a waiter");
        self.waiter_ = h;
      }
      T await_resume() {
        EFAC_CHECK(self.value_.has_value());
        T out = std::move(*self.value_);
        self.value_.reset();
        return out;
      }
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  std::optional<T> value_;
  std::coroutine_handle<> waiter_;
};

/// Manual-reset broadcast event. wait() suspends while closed; set() wakes
/// every current waiter and lets subsequent waiters pass until reset().
class Gate {
 public:
  explicit Gate(Simulator& sim, bool open = false) : sim_(sim), open_(open) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  void open() {
    open_ = true;
    for (std::coroutine_handle<> h : waiters_) sim_.schedule_after(0, h);
    waiters_.clear();
  }

  void close() noexcept { open_ = false; }

  [[nodiscard]] bool is_open() const noexcept { return open_; }

  auto wait() {
    struct Awaiter {
      Gate& self;
      bool await_ready() const noexcept { return self.open_; }
      void await_suspend(std::coroutine_handle<> h) {
        self.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  bool open_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO ordering. release() hands the permit
/// directly to the oldest waiter, so permits cannot be stolen by late
/// arrivals (no barging) — important for modelling fair CPU-core queues.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::size_t permits)
      : sim_(sim), available_(permits), capacity_(permits) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  auto acquire() { return AcquireAwaiter{.self = *this}; }

  void release() {
    if (!waiters_.empty()) {
      // Direct hand-off: the permit never becomes visible to other acquirers
      // and cannot be double-counted by the resuming waiter.
      AcquireAwaiter* w = waiters_.front();
      waiters_.pop_front();
      w->handed_off = true;
      sim_.schedule_after(0, w->handle);
    } else {
      EFAC_CHECK_MSG(available_ < capacity_, "Semaphore over-released");
      ++available_;
    }
  }

  [[nodiscard]] std::size_t available() const noexcept { return available_; }
  [[nodiscard]] std::size_t waiting() const noexcept {
    return waiters_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct AcquireAwaiter {
    Semaphore& self;
    bool handed_off = false;
    std::coroutine_handle<> handle{};

    bool await_ready() const noexcept { return self.available_ > 0; }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      self.waiters_.push_back(this);
    }
    void await_resume() const noexcept {
      if (!handed_off) {
        // Ready path: consume an available permit atomically (the DES is
        // cooperative, so nothing interleaves between ready and resume).
        --self.available_;
      }
    }
  };

  Simulator& sim_;
  std::size_t available_;
  std::size_t capacity_;
  std::deque<AcquireAwaiter*> waiters_;
};

/// RAII permit holder usable from coroutines:
///   auto permit = co_await SemaphoreLock::acquire(sem);
class SemaphoreLock {
 public:
  static Task<SemaphoreLock> acquire(Semaphore& sem) {
    co_await sem.acquire();
    co_return SemaphoreLock{&sem};
  }

  SemaphoreLock(SemaphoreLock&& other) noexcept
      : sem_(std::exchange(other.sem_, nullptr)) {}
  SemaphoreLock& operator=(SemaphoreLock&& other) noexcept {
    if (this != &other) {
      reset();
      sem_ = std::exchange(other.sem_, nullptr);
    }
    return *this;
  }
  SemaphoreLock(const SemaphoreLock&) = delete;
  SemaphoreLock& operator=(const SemaphoreLock&) = delete;
  ~SemaphoreLock() { reset(); }

  void reset() noexcept {
    if (sem_ != nullptr) {
      sem_->release();
      sem_ = nullptr;
    }
  }

 private:
  explicit SemaphoreLock(Semaphore* sem) : sem_(sem) {}
  Semaphore* sem_;
};

/// Unbounded FIFO channel. Values pushed while consumers wait are handed
/// directly to the oldest waiter (per-waiter slot), so a value can never be
/// stolen between wake-up and resumption.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : sim_(sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void push(T value) {
    if (!waiters_.empty()) {
      PopAwaiter* w = waiters_.front();
      waiters_.pop_front();
      w->slot.emplace(std::move(value));
      sim_.schedule_after(0, w->handle);
    } else {
      items_.push_back(std::move(value));
    }
  }

  /// Awaitable pop; FIFO among waiters.
  auto pop() { return PopAwaiter{.self = *this}; }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t waiting_consumers() const noexcept {
    return waiters_.size();
  }

 private:
  struct PopAwaiter {
    Channel& self;
    std::optional<T> slot{};
    std::coroutine_handle<> handle{};

    bool await_ready() const noexcept { return !self.items_.empty(); }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      self.waiters_.push_back(this);
    }
    T await_resume() {
      if (slot.has_value()) {
        return std::move(*slot);  // direct hand-off path
      }
      EFAC_CHECK(!self.items_.empty());
      T out = std::move(self.items_.front());
      self.items_.pop_front();
      return out;
    }
  };

  Simulator& sim_;
  std::deque<T> items_;
  std::deque<PopAwaiter*> waiters_;
};

}  // namespace efac::sim
