// Synchronization primitives for simulation actors.
//
// All primitives resume waiters *through the event queue* (at the current
// virtual instant) rather than inline. That keeps host-stack depth bounded
// and makes wake-up ordering deterministic and FIFO.
//
//   OneShot<T>  — single-producer/single-consumer future (RPC responses,
//                 verb completions).
//   Gate        — manual-reset broadcast event (log-cleaning start/stop,
//                 server readiness).
//   Semaphore   — counting semaphore with FIFO hand-off (server CPU cores).
//   Channel<T>  — unbounded FIFO queue with awaitable pop (request queues).
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "common/assert.hpp"
#include "sim/hb.hpp"
#include "sim/simulator.hpp"

namespace efac::sim {

/// Single-value future. Exactly one set() per value; at most one
/// concurrent waiter.
///
/// Single-consumer contract: at most one coroutine may be suspended in
/// wait() at a time. A second wait() while the first waiter is still
/// suspended throws efac::CheckFailure from wait() itself (not from deep
/// inside the awaiter machinery) — callers that need fan-out want a Gate
/// or a Channel, not a OneShot. After the value is consumed the slot is
/// empty again and may be re-set and re-awaited (the RPC layer reuses
/// slots this way).
template <typename T>
class OneShot {
 public:
  explicit OneShot(Simulator& sim) : sim_(sim) {}
  OneShot(const OneShot&) = delete;
  OneShot& operator=(const OneShot&) = delete;

  /// Fulfil the future. The waiter (if any) resumes at the current instant.
  void set(T value) {
    EFAC_CHECK_MSG(!value_.has_value(), "OneShot set twice");
    if (HbHooks* hb = sim_.hb_hooks()) hb->release(clock_);
    value_.emplace(std::move(value));
    if (waiter_) {
      sim_.schedule_actor_resume(waiter_actor_, std::exchange(waiter_, {}));
    }
  }

  [[nodiscard]] bool ready() const noexcept { return value_.has_value(); }

  /// Awaitable: suspends until set(), then yields the value (moved out).
  /// Throws efac::CheckFailure if a waiter is already suspended (see the
  /// single-consumer contract above).
  auto wait() {
    EFAC_CHECK_MSG(!waiter_,
                   "OneShot::wait(): a second waiter attached while the "
                   "first is still suspended — OneShot is single-consumer; "
                   "use a Gate (broadcast) or Channel (queue) for fan-out");
    struct Awaiter {
      OneShot& self;
      Simulator::OpContext saved{};
      bool suspended = false;
      bool await_ready() const noexcept { return self.value_.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        if (HbHooks* hb = self.sim_.hb_hooks()) {
          self.waiter_actor_ = hb->current_actor();
        }
        saved = self.sim_.op_context();
        suspended = true;
        self.waiter_ = h;
      }
      T await_resume() {
        if (suspended) self.sim_.set_op_context(saved);
        EFAC_CHECK(self.value_.has_value());
        if (HbHooks* hb = self.sim_.hb_hooks()) hb->acquire(self.clock_);
        T out = std::move(*self.value_);
        self.value_.reset();
        return out;
      }
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  std::optional<T> value_;
  std::coroutine_handle<> waiter_;
  VectorClock clock_;  ///< carries the setter's clock to the consumer
  std::uint32_t waiter_actor_ = 0;
};

/// Manual-reset broadcast event. wait() suspends while closed; set() wakes
/// every current waiter and lets subsequent waiters pass until reset().
class Gate {
 public:
  explicit Gate(Simulator& sim, bool open = false) : sim_(sim), open_(open) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  void open() {
    open_ = true;
    if (HbHooks* hb = sim_.hb_hooks()) hb->release(clock_);
    for (const Waiter& w : waiters_) {
      sim_.schedule_actor_resume(w.actor, w.handle);
    }
    waiters_.clear();
  }

  void close() noexcept { open_ = false; }

  [[nodiscard]] bool is_open() const noexcept { return open_; }

  auto wait() {
    struct Awaiter {
      Gate& self;
      Simulator::OpContext saved{};
      bool suspended = false;
      bool await_ready() const noexcept { return self.open_; }
      void await_suspend(std::coroutine_handle<> h) {
        std::uint32_t actor = 0;
        if (HbHooks* hb = self.sim_.hb_hooks()) actor = hb->current_actor();
        saved = self.sim_.op_context();
        suspended = true;
        self.waiters_.push_back(Waiter{h, actor});
      }
      void await_resume() {
        if (suspended) self.sim_.set_op_context(saved);
        if (HbHooks* hb = self.sim_.hb_hooks()) hb->acquire(self.clock_);
      }
    };
    return Awaiter{*this};
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::uint32_t actor;
  };

  Simulator& sim_;
  bool open_;
  std::deque<Waiter> waiters_;
  VectorClock clock_;  ///< carries the opener's clock to the waiters
};

/// Counting semaphore with FIFO ordering. release() hands the permit
/// directly to the oldest waiter, so permits cannot be stolen by late
/// arrivals (no barging) — important for modelling fair CPU-core queues.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::size_t permits)
      : sim_(sim), available_(permits), capacity_(permits) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  auto acquire() { return AcquireAwaiter{.self = *this}; }

  void release() {
    if (HbHooks* hb = sim_.hb_hooks()) hb->release(clock_);
    if (!waiters_.empty()) {
      // Direct hand-off: the permit never becomes visible to other acquirers
      // and cannot be double-counted by the resuming waiter.
      AcquireAwaiter* w = waiters_.front();
      waiters_.pop_front();
      w->handed_off = true;
      sim_.schedule_actor_resume(w->actor, w->handle);
    } else {
      EFAC_CHECK_MSG(available_ < capacity_, "Semaphore over-released");
      ++available_;
    }
  }

  [[nodiscard]] std::size_t available() const noexcept { return available_; }
  [[nodiscard]] std::size_t waiting() const noexcept {
    return waiters_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct AcquireAwaiter {
    Semaphore& self;
    bool handed_off = false;
    std::coroutine_handle<> handle{};
    std::uint32_t actor = 0;
    Simulator::OpContext saved{};
    bool suspended = false;

    bool await_ready() const noexcept { return self.available_ > 0; }
    void await_suspend(std::coroutine_handle<> h) {
      if (HbHooks* hb = self.sim_.hb_hooks()) actor = hb->current_actor();
      saved = self.sim_.op_context();
      suspended = true;
      handle = h;
      self.waiters_.push_back(this);
    }
    void await_resume() {
      if (suspended) self.sim_.set_op_context(saved);
      if (HbHooks* hb = self.sim_.hb_hooks()) hb->acquire(self.clock_);
      if (!handed_off) {
        // Ready path: consume an available permit atomically (the DES is
        // cooperative, so nothing interleaves between ready and resume).
        --self.available_;
      }
    }
  };

  Simulator& sim_;
  std::size_t available_;
  std::size_t capacity_;
  std::deque<AcquireAwaiter*> waiters_;
  VectorClock clock_;  ///< accumulated releaser clocks
};

/// RAII permit holder usable from coroutines:
///   auto permit = co_await SemaphoreLock::acquire(sem);
class SemaphoreLock {
 public:
  static Task<SemaphoreLock> acquire(Semaphore& sem) {
    co_await sem.acquire();
    co_return SemaphoreLock{&sem};
  }

  SemaphoreLock(SemaphoreLock&& other) noexcept
      : sem_(std::exchange(other.sem_, nullptr)) {}
  SemaphoreLock& operator=(SemaphoreLock&& other) noexcept {
    if (this != &other) {
      reset();
      sem_ = std::exchange(other.sem_, nullptr);
    }
    return *this;
  }
  SemaphoreLock(const SemaphoreLock&) = delete;
  SemaphoreLock& operator=(const SemaphoreLock&) = delete;
  ~SemaphoreLock() { reset(); }

  void reset() noexcept {
    if (sem_ != nullptr) {
      sem_->release();
      sem_ = nullptr;
    }
  }

 private:
  explicit SemaphoreLock(Semaphore* sem) : sem_(sem) {}
  Semaphore* sem_;
};

/// Unbounded FIFO channel. Values pushed while consumers wait are handed
/// directly to the oldest waiter (per-waiter slot), so a value can never be
/// stolen between wake-up and resumption.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : sim_(sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void push(T value) {
    HbHooks* const hb = sim_.hb_hooks();
    VectorClock clock;
    if (hb != nullptr) hb->release(clock);
    if (!waiters_.empty()) {
      PopAwaiter* w = waiters_.front();
      waiters_.pop_front();
      w->slot.emplace(std::move(value));
      if (hb != nullptr) w->slot_clock = std::move(clock);
      sim_.schedule_actor_resume(w->actor, w->handle);
    } else {
      items_.push_back(std::move(value));
      // item_clocks_ mirrors items_ only while hooks are attached (they
      // are attached before any traffic and never detached mid-run).
      if (hb != nullptr) item_clocks_.push_back(std::move(clock));
    }
  }

  /// Awaitable pop; FIFO among waiters.
  auto pop() { return PopAwaiter{.self = *this}; }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t waiting_consumers() const noexcept {
    return waiters_.size();
  }

 private:
  struct PopAwaiter {
    Channel& self;
    std::optional<T> slot{};
    std::coroutine_handle<> handle{};
    VectorClock slot_clock{};
    std::uint32_t actor = 0;
    Simulator::OpContext saved{};
    bool suspended = false;

    bool await_ready() const noexcept { return !self.items_.empty(); }
    void await_suspend(std::coroutine_handle<> h) {
      if (HbHooks* hb = self.sim_.hb_hooks()) actor = hb->current_actor();
      saved = self.sim_.op_context();
      suspended = true;
      handle = h;
      self.waiters_.push_back(this);
    }
    T await_resume() {
      if (suspended) self.sim_.set_op_context(saved);
      HbHooks* const hb = self.sim_.hb_hooks();
      if (slot.has_value()) {
        if (hb != nullptr) hb->acquire(slot_clock);
        return std::move(*slot);  // direct hand-off path
      }
      EFAC_CHECK(!self.items_.empty());
      T out = std::move(self.items_.front());
      self.items_.pop_front();
      if (hb != nullptr && !self.item_clocks_.empty()) {
        hb->acquire(self.item_clocks_.front());
        self.item_clocks_.pop_front();
      }
      return out;
    }
  };

  Simulator& sim_;
  std::deque<T> items_;
  std::deque<VectorClock> item_clocks_;  ///< pusher clocks, per queued item
  std::deque<PopAwaiter*> waiters_;
};

}  // namespace efac::sim
