// Lazy coroutine task for simulation actors.
//
// Task<T> is the return type of every simulated activity (an RPC, a verb
// completion, a whole client session). Tasks are:
//   * lazy        — the body does not run until awaited or spawned;
//   * move-only   — the Task object owns the coroutine frame;
//   * chained     — completion resumes the awaiting coroutine via symmetric
//                   transfer, so arbitrarily deep protocol stacks cost no
//                   host-stack depth.
//
// Exceptions thrown inside a task propagate to the awaiter; exceptions that
// escape a *detached* (spawned) task are captured by the Simulator and
// rethrown from Simulator::run()/step().
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

namespace efac::sim {

template <typename T>
class Task;

namespace detail {

struct TaskFinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    std::coroutine_handle<> cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }
  TaskFinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct TaskPromise final : TaskPromiseBase {
  std::optional<T> value;

  Task<T> get_return_object() noexcept;
  void return_value(T v) { value.emplace(std::move(v)); }
  T&& result() {
    if (exception) std::rethrow_exception(exception);
    EFAC_CHECK_MSG(value.has_value(), "task finished without a value");
    return std::move(*value);
  }
};

template <>
struct TaskPromise<void> final : TaskPromiseBase {
  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
  void result() {
    if (exception) std::rethrow_exception(exception);
  }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(Handle handle) noexcept : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(handle_);
  }
  [[nodiscard]] bool done() const noexcept { return handle_ && handle_.done(); }

  /// Awaiting a task starts it and suspends the awaiter until completion.
  auto operator co_await() & noexcept { return Awaiter{handle_}; }
  auto operator co_await() && noexcept { return Awaiter{handle_}; }

  /// Release ownership of the frame (used by Simulator::spawn's driver).
  Handle release() noexcept { return std::exchange(handle_, {}); }

 private:
  struct Awaiter {
    Handle handle;
    bool await_ready() const noexcept {
      EFAC_CHECK_MSG(handle, "awaiting an empty Task");
      return handle.done();
    }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> cont) noexcept {
      handle.promise().continuation = cont;
      return handle;  // symmetric transfer: start/resume the child
    }
    T await_resume() { return handle.promise().result(); }
  };

  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_{};
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() noexcept {
  return Task<T>{std::coroutine_handle<TaskPromise<T>>::from_promise(*this)};
}

inline Task<void> TaskPromise<void>::get_return_object() noexcept {
  return Task<void>{
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this)};
}

}  // namespace detail

}  // namespace efac::sim
