// Arena-resident hash directory used by eFactory, SAW, IMM, Forca and the
// RPC / CA baselines.
//
// One 32-byte entry per bucket, linear probing:
//
//   u64 key_hash   0 = empty slot
//   u64 off_old    head-version offset in the *working* data pool (0 = none)
//   u64 off_new    head-version offset in the *new* pool during log cleaning
//   u64 meta       bit0 = mark (which offset names the current working pool)
//
// Clients fetch single entries with one 32-byte RDMA READ at
// entry_offset(ideal_slot(hash)); if the fetched key_hash does not match
// (collision displaced the key, or the key is absent) they fall back to the
// RPC+RDMA path, where the server probes. Entry updates by the server are
// four 8-byte atomic stores; the (off_old | off_new, mark) pair is arranged
// so that a reader always finds a usable head pointer mid-cleaning.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "common/types.hpp"
#include "nvm/arena.hpp"

namespace efac::kv {

class HashDir {
 public:
  static constexpr std::size_t kEntrySize = 32;

  struct Entry {
    std::uint64_t key_hash = 0;
    MemOffset off_old = 0;
    MemOffset off_new = 0;
    bool mark = false;  ///< true: off_new names the working pool

    [[nodiscard]] bool empty() const noexcept { return key_hash == 0; }
    /// Head-version offset in the current working pool.
    [[nodiscard]] MemOffset current() const noexcept {
      return mark ? off_new : off_old;
    }
  };

  /// Arena bytes needed for `buckets` (power of two) entries.
  static constexpr std::size_t bytes_required(std::size_t buckets) noexcept {
    return buckets * kEntrySize;
  }

  HashDir(nvm::Arena& arena, MemOffset base, std::size_t buckets);

  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_; }
  [[nodiscard]] MemOffset base() const noexcept { return base_; }

  /// Bucket a key hashes to before probing (what a client computes).
  [[nodiscard]] std::size_t ideal_slot(std::uint64_t key_hash) const noexcept {
    return key_hash & (buckets_ - 1);
  }

  /// Absolute arena offset of a slot's entry (for client RDMA reads).
  [[nodiscard]] MemOffset entry_offset(std::size_t slot) const noexcept {
    return base_ + slot * kEntrySize;
  }

  /// Server-side probe for an existing key. Returns the slot index.
  /// `probes_out` (optional) reports the probe count for cost charging.
  [[nodiscard]] Expected<std::size_t> find(std::uint64_t key_hash,
                                           std::size_t* probes_out = nullptr);

  /// Server-side probe-or-claim for a PUT. Claims an empty slot with the
  /// key hash if absent (does not flush).
  [[nodiscard]] Expected<std::size_t> find_or_claim(
      std::uint64_t key_hash, std::size_t* probes_out = nullptr);

  /// Read / write a full entry (server side; writes do not flush).
  [[nodiscard]] Entry read(std::size_t slot);
  void write(std::size_t slot, const Entry& entry);

  /// Flush one entry's line to the media.
  void persist(std::size_t slot);

  /// Decode a raw 32-byte entry a client fetched with RDMA READ.
  static Entry decode(BytesView raw);

  [[nodiscard]] std::size_t size() const noexcept { return live_; }

 private:
  nvm::Arena* arena_;
  MemOffset base_;
  std::size_t buckets_;
  std::size_t live_ = 0;
};

}  // namespace efac::kv
