#include "kv/erda_table.hpp"

#include <bit>

#include "common/assert.hpp"
#include "common/bytes.hpp"

namespace efac::kv {

ErdaTable::ErdaTable(nvm::Arena& arena, MemOffset base, std::size_t buckets,
                     MemOffset pool_base)
    : arena_(&arena), base_(base), buckets_(buckets), pool_base_(pool_base) {
  EFAC_CHECK_MSG(std::has_single_bit(buckets), "bucket count must be 2^k");
  EFAC_CHECK_MSG(buckets >= kNeighborhood, "table smaller than neighborhood");
  EFAC_CHECK_MSG(base % 8 == 0, "table base must be 8-aligned");
  EFAC_CHECK_MSG(base + bytes_required(buckets) <= arena.size(),
                 "erda table exceeds arena");
  EFAC_CHECK_MSG(pool_base % 8 == 0, "pool base must be 8-aligned");
}

std::uint64_t ErdaTable::encode(const Versions& v) const {
  auto pack = [&](MemOffset abs) -> std::uint64_t {
    if (abs == 0) return 0;
    EFAC_CHECK_MSG(abs >= pool_base_ && (abs - pool_base_) % 8 == 0,
                   "offset not in pool space");
    const std::uint64_t units = (abs - pool_base_) / 8 + 1;
    EFAC_CHECK_MSG(units <= kOffsetMask, "pool offset exceeds 28-bit field");
    return units;
  };
  return (static_cast<std::uint64_t>(v.tag) << (2 * kOffsetBits)) |
         (pack(v.cur) << kOffsetBits) | pack(v.prev);
}

ErdaTable::Versions ErdaTable::decode_with_base(std::uint64_t word,
                                                MemOffset pool_base) {
  auto unpack = [&](std::uint64_t units) -> MemOffset {
    return units == 0 ? 0 : pool_base + (units - 1) * 8;
  };
  Versions v;
  v.tag = static_cast<std::uint8_t>(word >> (2 * kOffsetBits));
  v.cur = unpack((word >> kOffsetBits) & kOffsetMask);
  v.prev = unpack(word & kOffsetMask);
  return v;
}

ErdaTable::Versions ErdaTable::decode(std::uint64_t word) const {
  return decode_with_base(word, pool_base_);
}

Expected<std::size_t> ErdaTable::find(std::uint64_t key_hash) {
  EFAC_CHECK(key_hash != 0);
  const std::size_t home = ideal_slot(key_hash);
  for (std::size_t i = 0; i < kNeighborhood; ++i) {
    const std::size_t slot = home + i;  // spill region: no wrap needed
    if (arena_->load_u64(bucket_offset(slot)) == key_hash) return slot;
  }
  return Status{StatusCode::kNotFound};
}

Expected<std::size_t> ErdaTable::find_or_claim(std::uint64_t key_hash) {
  if (Expected<std::size_t> found = find(key_hash)) return found;
  const std::size_t home = ideal_slot(key_hash);
  // Nearest free physical slot at or after home.
  std::size_t free = physical_slots();
  for (std::size_t slot = home; slot < physical_slots(); ++slot) {
    if (arena_->load_u64(bucket_offset(slot)) == 0) {
      free = slot;
      break;
    }
  }
  if (free == physical_slots()) {
    return Status{StatusCode::kOutOfSpace, "erda table full"};
  }
  // Hopscotch displacement: while the free slot is outside the home
  // neighborhood, move some key whose own neighborhood covers `free`
  // backwards into it.
  while (free >= home + kNeighborhood) {
    bool moved = false;
    for (std::size_t cand = free - (kNeighborhood - 1); cand < free; ++cand) {
      const std::uint64_t cand_hash = arena_->load_u64(bucket_offset(cand));
      if (cand_hash == 0) continue;
      const std::size_t cand_home = ideal_slot(cand_hash);
      if (cand_home + kNeighborhood > free) {
        // Candidate may legally sit at `free`: relocate its bucket.
        const std::uint64_t region =
            arena_->load_u64(bucket_offset(cand) + 8);
        arena_->store_u64(bucket_offset(free), cand_hash);
        arena_->store_u64(bucket_offset(free) + 8, region);
        arena_->store_u64(bucket_offset(cand), 0);
        arena_->store_u64(bucket_offset(cand) + 8, 0);
        free = cand;
        moved = true;
        break;
      }
    }
    if (!moved) {
      return Status{StatusCode::kOutOfSpace, "hopscotch displacement failed"};
    }
  }
  arena_->store_u64(bucket_offset(free), key_hash);
  arena_->store_u64(bucket_offset(free) + 8, 0);
  ++live_;
  return free;
}

void ErdaTable::push_version(std::size_t slot, MemOffset offset) {
  EFAC_CHECK(slot < physical_slots());
  const Versions old = decode(arena_->load_u64(bucket_offset(slot) + 8));
  Versions next;
  next.prev = old.cur;
  next.cur = offset;
  next.tag = static_cast<std::uint8_t>(old.tag + 1);
  // The single 8-byte store that makes Erda's metadata update atomic.
  arena_->store_u64(bucket_offset(slot) + 8, encode(next));
}

ErdaTable::Versions ErdaTable::read_versions(std::size_t slot) {
  EFAC_CHECK(slot < physical_slots());
  return decode(arena_->load_u64(bucket_offset(slot) + 8));
}

std::uint64_t ErdaTable::read_hash(std::size_t slot) {
  EFAC_CHECK(slot < physical_slots());
  return arena_->load_u64(bucket_offset(slot));
}

void ErdaTable::persist(std::size_t slot) {
  arena_->flush(bucket_offset(slot), kBucketSize);
}

Expected<ErdaTable::Versions> ErdaTable::scan_neighborhood(
    BytesView raw, std::uint64_t key_hash, MemOffset pool_base) {
  EFAC_CHECK(raw.size() >= neighborhood_bytes());
  for (std::size_t i = 0; i < kNeighborhood; ++i) {
    const std::uint64_t h = load_u64_le(raw.data() + i * kBucketSize);
    if (h == key_hash) {
      const std::uint64_t region =
          load_u64_le(raw.data() + i * kBucketSize + 8);
      return decode_with_base(region, pool_base);
    }
  }
  return Status{StatusCode::kNotFound};
}

}  // namespace efac::kv
