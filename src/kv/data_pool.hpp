// Log-structured data pool: a bump allocator over a contiguous arena range.
//
// Objects are appended out-of-place; nothing is ever overwritten in place,
// which is what makes remote updates atomic (a torn append damages only the
// new version) and leaves old versions available for recovery. Reclamation
// happens wholesale via log cleaning into a sibling pool.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "common/types.hpp"
#include "nvm/arena.hpp"

namespace efac::kv {

class DataPool {
 public:
  DataPool(nvm::Arena& arena, MemOffset base, std::size_t capacity)
      : arena_(&arena), base_(base), capacity_(capacity) {
    EFAC_CHECK_MSG(base % 8 == 0, "pool base must be 8-aligned");
    EFAC_CHECK_MSG(base + capacity <= arena.size(), "pool exceeds arena");
  }

  /// Append-allocate `bytes` (rounded up to 8); returns the absolute arena
  /// offset, or kOutOfSpace when the pool is exhausted.
  [[nodiscard]] Expected<MemOffset> allocate(std::size_t bytes) {
    const std::size_t need = (bytes + 7) / 8 * 8;
    if (need > capacity_ - used_) {
      return Status{StatusCode::kOutOfSpace, "data pool full"};
    }
    const MemOffset off = base_ + used_;
    used_ += need;
    ++allocations_;
    return off;
  }

  /// Drop all allocations (after this pool's contents were migrated away).
  void reset() noexcept {
    arena_->forget_shadow(base_, capacity_);
    used_ = 0;
    allocations_ = 0;
  }

  [[nodiscard]] MemOffset base() const noexcept { return base_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return capacity_ - used_;
  }
  [[nodiscard]] std::uint64_t allocations() const noexcept {
    return allocations_;
  }
  [[nodiscard]] double fill_fraction() const noexcept {
    return static_cast<double>(used_) / static_cast<double>(capacity_);
  }
  [[nodiscard]] bool contains(MemOffset off) const noexcept {
    return off >= base_ && off < base_ + capacity_;
  }

  [[nodiscard]] nvm::Arena& arena() noexcept { return *arena_; }

 private:
  nvm::Arena* arena_;
  MemOffset base_;
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::uint64_t allocations_ = 0;
};

}  // namespace efac::kv
