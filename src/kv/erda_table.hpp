// Erda's index: Hopscotch hashing with an 8-byte atomic two-version region
// per bucket (paper §5.3.3 and the Erda design it reimplements).
//
// Bucket layout (16 bytes):
//
//   u64 key_hash        0 = empty
//   u64 atomic_region   [ tag:8 | cur:28 | prev:28 ]
//
// `cur`/`prev` are the offsets of the latest two versions, stored in
// 8-byte units relative to the data-pool base, biased by +1 so that 0
// means "none". Packing both into one 8-byte word is what lets Erda's
// server update the index with a single atomic store — and is exactly the
// limitation the paper calls out: only two versions are recoverable, so
// concurrent updates to one key can leave no intact reachable version.
//
// Hopscotch: a key lives within kNeighborhood slots of its home bucket, so
// a client fetches the whole neighborhood with ONE contiguous RDMA READ of
// kNeighborhood * 16 bytes and locates the key locally. To keep that read
// contiguous the table carries a kNeighborhood-sized spill region past the
// last home bucket instead of wrapping around.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "common/types.hpp"
#include "nvm/arena.hpp"

namespace efac::kv {

class ErdaTable {
 public:
  static constexpr std::size_t kBucketSize = 16;
  static constexpr std::size_t kNeighborhood = 8;
  static constexpr std::uint64_t kOffsetBits = 28;
  static constexpr std::uint64_t kOffsetMask = (1ull << kOffsetBits) - 1;

  /// Decoded atomic region.
  struct Versions {
    MemOffset cur = 0;   ///< absolute arena offset; 0 = none
    MemOffset prev = 0;
    std::uint8_t tag = 0;
  };

  /// Arena bytes for `buckets` home slots plus the spill region.
  static constexpr std::size_t bytes_required(std::size_t buckets) noexcept {
    return (buckets + kNeighborhood) * kBucketSize;
  }

  ErdaTable(nvm::Arena& arena, MemOffset base, std::size_t buckets,
            MemOffset pool_base);

  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_; }
  [[nodiscard]] std::size_t ideal_slot(std::uint64_t key_hash) const noexcept {
    return key_hash & (buckets_ - 1);
  }
  [[nodiscard]] MemOffset bucket_offset(std::size_t slot) const noexcept {
    return base_ + slot * kBucketSize;
  }
  /// Bytes a client reads to cover a whole neighborhood in one verb.
  [[nodiscard]] static constexpr std::size_t neighborhood_bytes() noexcept {
    return kNeighborhood * kBucketSize;
  }

  /// Server-side: find the slot holding key_hash (within its neighborhood).
  [[nodiscard]] Expected<std::size_t> find(std::uint64_t key_hash);

  /// Server-side insert-or-get with hopscotch displacement.
  [[nodiscard]] Expected<std::size_t> find_or_claim(std::uint64_t key_hash);

  /// Push a new head version: prev <- cur, cur <- offset, tag++.
  /// One 8-byte atomic store, as Erda requires. Does not flush.
  void push_version(std::size_t slot, MemOffset offset);

  [[nodiscard]] Versions read_versions(std::size_t slot);
  [[nodiscard]] std::uint64_t read_hash(std::size_t slot);

  /// Flush one bucket to the media.
  void persist(std::size_t slot);

  /// Client-side: scan a fetched neighborhood (raw bytes from an RDMA READ
  /// starting at bucket_offset(ideal_slot)) for key_hash; returns the
  /// decoded versions.
  [[nodiscard]] static Expected<Versions> scan_neighborhood(
      BytesView raw, std::uint64_t key_hash, MemOffset pool_base);

  [[nodiscard]] MemOffset pool_base() const noexcept { return pool_base_; }
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

 private:
  [[nodiscard]] std::uint64_t encode(const Versions& v) const;
  [[nodiscard]] Versions decode(std::uint64_t word) const;
  static Versions decode_with_base(std::uint64_t word, MemOffset pool_base);

  /// Total physical slots including the spill region.
  [[nodiscard]] std::size_t physical_slots() const noexcept {
    return buckets_ + kNeighborhood;
  }

  nvm::Arena* arena_;
  MemOffset base_;
  std::size_t buckets_;
  MemOffset pool_base_;
  std::size_t live_ = 0;
};

}  // namespace efac::kv
