#include "kv/hash_dir.hpp"

#include <bit>

#include "common/assert.hpp"
#include "common/bytes.hpp"

namespace efac::kv {

HashDir::HashDir(nvm::Arena& arena, MemOffset base, std::size_t buckets)
    : arena_(&arena), base_(base), buckets_(buckets) {
  EFAC_CHECK_MSG(std::has_single_bit(buckets), "bucket count must be 2^k");
  EFAC_CHECK_MSG(base % 8 == 0, "hash base must be 8-aligned");
  EFAC_CHECK_MSG(base + bytes_required(buckets) <= arena.size(),
                 "hash table exceeds arena");
}

Expected<std::size_t> HashDir::find(std::uint64_t key_hash,
                                    std::size_t* probes_out) {
  EFAC_CHECK(key_hash != 0);
  std::size_t slot = ideal_slot(key_hash);
  for (std::size_t probe = 0; probe < buckets_; ++probe) {
    const std::uint64_t stored = arena_->load_u64(entry_offset(slot));
    if (probes_out != nullptr) *probes_out = probe + 1;
    if (stored == key_hash) return slot;
    if (stored == 0) return Status{StatusCode::kNotFound};
    slot = (slot + 1) & (buckets_ - 1);
  }
  return Status{StatusCode::kNotFound, "table scan exhausted"};
}

Expected<std::size_t> HashDir::find_or_claim(std::uint64_t key_hash,
                                             std::size_t* probes_out) {
  EFAC_CHECK(key_hash != 0);
  std::size_t slot = ideal_slot(key_hash);
  for (std::size_t probe = 0; probe < buckets_; ++probe) {
    const std::uint64_t stored = arena_->load_u64(entry_offset(slot));
    if (probes_out != nullptr) *probes_out = probe + 1;
    if (stored == key_hash) return slot;
    if (stored == 0) {
      arena_->store_u64(entry_offset(slot), key_hash);
      ++live_;
      return slot;
    }
    slot = (slot + 1) & (buckets_ - 1);
  }
  return Status{StatusCode::kOutOfSpace, "hash table full"};
}

HashDir::Entry HashDir::read(std::size_t slot) {
  EFAC_CHECK(slot < buckets_);
  return decode(arena_->load(entry_offset(slot), kEntrySize));
}

void HashDir::write(std::size_t slot, const Entry& entry) {
  EFAC_CHECK(slot < buckets_);
  const MemOffset off = entry_offset(slot);
  // Four 8-byte atomic stores; a concurrent reader sees each field either
  // old or new, never torn.
  if (arena_->load_u64(off) == 0 && entry.key_hash != 0) ++live_;
  arena_->store_u64(off, entry.key_hash);
  arena_->store_u64(off + 8, entry.off_old);
  arena_->store_u64(off + 16, entry.off_new);
  arena_->store_u64(off + 24, entry.mark ? 1 : 0);
}

void HashDir::persist(std::size_t slot) {
  arena_->flush(entry_offset(slot), kEntrySize);
}

HashDir::Entry HashDir::decode(BytesView raw) {
  EFAC_CHECK(raw.size() >= kEntrySize);
  ByteReader r{raw};
  Entry e;
  e.key_hash = r.get_u64();
  e.off_old = r.get_u64();
  e.off_new = r.get_u64();
  e.mark = (r.get_u64() & 1) != 0;
  return e;
}

}  // namespace efac::kv
