// On-media object layout (paper Fig. 4).
//
// Every version of every key is one contiguous object in a data pool:
//
//   offset  field
//   ------  -----------------------------------------------------------
//   0       u32  crc          CRC-32 of the value bytes
//   4       u32  vlen
//   8       u32  klen
//   12      u32  flags        bit0 = valid, bit1 = transferred (Trans)
//   16      u64  pre_ptr      arena offset of the previous version (0 = none)
//   24      u64  next_ptr     arena offset of the next (newer) version
//   32      u64  write_time   server receive time, drives the timeout
//   40      u64  key_hash
//   48      key bytes
//   48+klen value bytes       (written by the client via RDMA WRITE)
//   pad to 8
//   u64  durability flag      1 after verify+flush ("embedded in the object")
//
// The durability flag trails the value so that a single RDMA READ of the
// whole object yields data + flag — the heart of the hybrid read scheme.
// Arena offset 0 is reserved (the hash table lives there), so offset 0
// doubles as the null version pointer.
#pragma once

#include <cstdint>

#include "checksum/crc32.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"
#include "nvm/arena.hpp"

namespace efac::kv {

/// Decoded object header fields.
struct ObjectMeta {
  std::uint32_t crc = 0;
  std::uint32_t vlen = 0;
  std::uint32_t klen = 0;
  bool valid = true;
  bool transferred = false;
  bool tombstone = false;  ///< this version deletes the key
  MemOffset pre_ptr = 0;   ///< previous (older) version; 0 = none
  MemOffset next_ptr = 0;  ///< next (newer) version; 0 = none
  SimTime write_time = 0;
  std::uint64_t key_hash = 0;
};

/// Stateless layout calculator + field accessors over an arena.
struct ObjectLayout {
  static constexpr std::size_t kHeaderSize = 48;
  static constexpr MemOffset kFlagsFieldOff = 12;
  static constexpr MemOffset kPrePtrFieldOff = 16;
  static constexpr MemOffset kNextPtrFieldOff = 24;

  static constexpr std::uint32_t kFlagValid = 1u << 0;
  static constexpr std::uint32_t kFlagTransferred = 1u << 1;
  static constexpr std::uint32_t kFlagTombstone = 1u << 2;

  /// Bytes from object start to the durability-flag word (8-aligned).
  static constexpr std::size_t flag_offset(std::size_t klen,
                                           std::size_t vlen) noexcept {
    const std::size_t payload_end = kHeaderSize + klen + vlen;
    return (payload_end + 7) / 8 * 8;
  }

  /// Total on-media footprint of one object.
  static constexpr std::size_t total_size(std::size_t klen,
                                          std::size_t vlen) noexcept {
    return flag_offset(klen, vlen) + 8;
  }

  static Bytes encode_header(const ObjectMeta& meta);
  static ObjectMeta decode_header(BytesView bytes);
};

/// A located object inside an arena: reads/writes individual fields,
/// charging nothing — callers charge virtual-time costs themselves.
class ObjectRef {
 public:
  ObjectRef(nvm::Arena& arena, MemOffset offset)
      : arena_(&arena), offset_(offset) {}

  [[nodiscard]] MemOffset offset() const noexcept { return offset_; }

  /// Write the full header (not the flag word). Does not flush.
  void write_header(const ObjectMeta& meta);

  [[nodiscard]] ObjectMeta read_header() const;

  /// Write the key bytes (server-side, at allocation).
  void write_key(BytesView key);
  [[nodiscard]] Bytes read_key(std::size_t klen) const;
  [[nodiscard]] Bytes read_value(std::size_t klen, std::size_t vlen) const;

  /// Durability flag accessors. set_durable does not flush by itself.
  void set_durable(std::size_t klen, std::size_t vlen, bool durable);
  [[nodiscard]] bool is_durable(std::size_t klen, std::size_t vlen) const;

  /// Update individual header fields in place (8-byte atomic stores).
  void set_valid(bool valid);
  void set_transferred(bool transferred);
  void set_pre_ptr(MemOffset pre);
  void set_next_ptr(MemOffset next);

  /// Recompute the value CRC from current arena contents and compare with
  /// the recorded one. The virtual-time cost (CrcCostModel) is the
  /// caller's to charge.
  [[nodiscard]] bool verify_crc() const;

  /// Flush the entire object (header + key + value + flag) to the media.
  void flush_all(std::size_t klen, std::size_t vlen);

 private:
  void store_flags_word(std::uint32_t flags);

  nvm::Arena* arena_;
  MemOffset offset_;
};

/// Key hash used across all stores (never 0: 0 marks an empty hash slot).
[[nodiscard]] std::uint64_t hash_key(BytesView key);

/// The checksum stored in object headers: CRC-32 of the value, seeded with
/// a digest of (key_hash, klen, vlen). Binding the object's identity into
/// the seed closes a torn-header hole: a crash can drop the header word
/// holding crc+vlen (8-byte eviction granularity) while the key_hash word
/// survives, leaving crc=0, vlen=0 — and a plain CRC over zero value bytes
/// is 0, which would self-validate and "recover" an empty value that was
/// never written. With the seeded form, a mutated header cannot agree
/// with its own checksum by accident.
[[nodiscard]] std::uint32_t object_crc(std::uint64_t key_hash,
                                       std::uint32_t klen,
                                       std::uint32_t vlen, BytesView value);

}  // namespace efac::kv
