#include "kv/object.hpp"

#include "common/assert.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace efac::kv {

Bytes ObjectLayout::encode_header(const ObjectMeta& meta) {
  ByteWriter w{kHeaderSize};
  w.put_u32(meta.crc);
  w.put_u32(meta.vlen);
  w.put_u32(meta.klen);
  std::uint32_t flags = 0;
  if (meta.valid) flags |= kFlagValid;
  if (meta.transferred) flags |= kFlagTransferred;
  if (meta.tombstone) flags |= kFlagTombstone;
  w.put_u32(flags);
  w.put_u64(meta.pre_ptr);
  w.put_u64(meta.next_ptr);
  w.put_u64(meta.write_time);
  w.put_u64(meta.key_hash);
  EFAC_CHECK(w.size() == kHeaderSize);
  return std::move(w).take();
}

ObjectMeta ObjectLayout::decode_header(BytesView bytes) {
  EFAC_CHECK(bytes.size() >= kHeaderSize);
  ByteReader r{bytes};
  ObjectMeta meta;
  meta.crc = r.get_u32();
  meta.vlen = r.get_u32();
  meta.klen = r.get_u32();
  const std::uint32_t flags = r.get_u32();
  meta.valid = (flags & kFlagValid) != 0;
  meta.transferred = (flags & kFlagTransferred) != 0;
  meta.tombstone = (flags & kFlagTombstone) != 0;
  meta.pre_ptr = r.get_u64();
  meta.next_ptr = r.get_u64();
  meta.write_time = r.get_u64();
  meta.key_hash = r.get_u64();
  return meta;
}

void ObjectRef::write_header(const ObjectMeta& meta) {
  arena_->store(offset_, ObjectLayout::encode_header(meta));
}

ObjectMeta ObjectRef::read_header() const {
  return ObjectLayout::decode_header(
      arena_->load(offset_, ObjectLayout::kHeaderSize));
}

void ObjectRef::write_key(BytesView key) {
  arena_->store(offset_ + ObjectLayout::kHeaderSize, key);
}

Bytes ObjectRef::read_key(std::size_t klen) const {
  return arena_->load(offset_ + ObjectLayout::kHeaderSize, klen);
}

Bytes ObjectRef::read_value(std::size_t klen, std::size_t vlen) const {
  return arena_->load(offset_ + ObjectLayout::kHeaderSize + klen, vlen);
}

void ObjectRef::set_durable(std::size_t klen, std::size_t vlen,
                            bool durable) {
  arena_->store_u64(offset_ + ObjectLayout::flag_offset(klen, vlen),
                    durable ? 1 : 0);
}

bool ObjectRef::is_durable(std::size_t klen, std::size_t vlen) const {
  // flag==1 promises exactly "header+key+value are persisted": a positive
  // test of this predicate is static persist evidence (docs/STATIC_ANALYSIS.md).
  EFAC_FN_OBSERVES_DURABLE();
  return arena_->load_u64(offset_ + ObjectLayout::flag_offset(klen, vlen)) ==
         1;
}

void ObjectRef::store_flags_word(std::uint32_t flags) {
  // The flags field shares its 8-byte atomic unit with klen; rewrite the
  // whole word to keep the store atomic.
  std::uint64_t word = arena_->load_u64(offset_ + 8);
  word = (word & 0xFFFFFFFFull) | (static_cast<std::uint64_t>(flags) << 32);
  arena_->store_u64(offset_ + 8, word);
}

void ObjectRef::set_valid(bool valid) {
  std::uint32_t flags = static_cast<std::uint32_t>(
      arena_->load_u64(offset_ + 8) >> 32);
  flags = valid ? (flags | ObjectLayout::kFlagValid)
                : (flags & ~ObjectLayout::kFlagValid);
  store_flags_word(flags);
}

void ObjectRef::set_transferred(bool transferred) {
  std::uint32_t flags = static_cast<std::uint32_t>(
      arena_->load_u64(offset_ + 8) >> 32);
  flags = transferred ? (flags | ObjectLayout::kFlagTransferred)
                      : (flags & ~ObjectLayout::kFlagTransferred);
  store_flags_word(flags);
}

void ObjectRef::set_pre_ptr(MemOffset pre) {
  arena_->store_u64(offset_ + ObjectLayout::kPrePtrFieldOff, pre);
}

void ObjectRef::set_next_ptr(MemOffset next) {
  arena_->store_u64(offset_ + ObjectLayout::kNextPtrFieldOff, next);
}

bool ObjectRef::verify_crc() const {
  const ObjectMeta meta = read_header();
  // Guard against torn headers with absurd sizes (recovery-time reads).
  const std::size_t total = ObjectLayout::total_size(meta.klen, meta.vlen);
  if (offset_ > arena_->size() || total > arena_->size() - offset_) {
    return false;
  }
  const Bytes value = read_value(meta.klen, meta.vlen);
  return object_crc(meta.key_hash, meta.klen, meta.vlen, value) == meta.crc;
}

void ObjectRef::flush_all(std::size_t klen, std::size_t vlen) {
  arena_->flush(offset_, ObjectLayout::total_size(klen, vlen));
}

std::uint32_t object_crc(std::uint64_t key_hash, std::uint32_t klen,
                         std::uint32_t vlen, BytesView value) {
  const std::uint64_t identity =
      mix64(key_hash ^ (static_cast<std::uint64_t>(vlen) << 32) ^ klen);
  return checksum::crc32(value, static_cast<std::uint32_t>(identity));
}

std::uint64_t hash_key(BytesView key) {
  // FNV-1a folded through mix64; never returns 0 (0 marks empty slots).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : key) {
    h = (h ^ b) * 0x100000001b3ULL;
  }
  h = mix64(h);
  return h == 0 ? 1 : h;
}

}  // namespace efac::kv
