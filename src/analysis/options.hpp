// Knobs for the virtual-time conflict sanitizer (see docs/ANALYSIS.md).
//
// Kept in its own tiny header so stores/config.hpp can embed the options
// without pulling the checker implementation into every translation unit.
#pragma once

#include <cstddef>

namespace efac::analysis {

/// Configuration of the happens-before race / durability-lint checker.
/// Disabled by default: with `enabled == false` no Checker is constructed
/// and every hook in the simulator, arena and sync primitives reduces to a
/// single pointer test (same pattern as efac::fault).
struct AnalysisOptions {
  /// Master switch: attach a Checker to the cluster and shadow-track every
  /// arena access.
  bool enabled = false;
  /// Throw efac::CheckFailure at the first unguarded race or durability
  /// violation instead of accumulating a report until the run ends.
  bool fail_fast = false;
  /// Suppress the durability lint. Fault plans that legitimately compromise
  /// durability (dropped/deferred persists, torn writes surviving to a
  /// flag-set) would otherwise trip it; the race rules stay active.
  bool allow_unflushed_durability = false;
  /// Retain at most this many violation records verbatim; anything beyond
  /// is still counted in the totals but not stored.
  std::size_t max_reports = 64;
};

}  // namespace efac::analysis
