// Virtual-time conflict sanitizer over the simulated NVM fabric.
//
// The Checker is a TSan-style happens-before race detector plus a
// durability lint, specialized to the simulation's memory model:
//
//   * Every byte of the arena carries shadow state: the last write access
//     (actor, epoch, virtual interval — DMA payloads occupy [post, arrive])
//     and the last read access per byte.
//   * Actors are *clock domains*, not coroutines. All server-side
//     coroutines (workers, background verifier, log cleaner, recovery)
//     share one "server" actor: the cooperative DES scheduler is real
//     synchronization between them, and the conflicts the paper cares
//     about are cross-domain — client DMA vs server CPU, client vs client.
//   * Vector clocks flow through the sync primitives (OneShot / Gate /
//     Semaphore / Channel), which covers RPC request/response delivery and
//     QP completion hand-off for free (see docs/ANALYSIS.md).
//
// Every overlapping access pair is classified:
//
//   ordered    same actor, or connected by a happens-before path;
//   guarded    conflicting, but at least one side carries a protocol
//              annotation (CRC verify, durability-flag check, metadata
//              revalidation, 8-byte atomic word, declared-racy update) —
//              the tolerated races that motivate the paper's design;
//   unguarded  a hard error, reported with both actors, sites and virtual
//              timestamps.
//
// The durability lint is independent of ordering: assert_durable() at any
// point that exposes bytes as durable (returning a durability hit to a
// client, acking a persist) fails if the range is still volatile — either
// unflushed past the volatility boundary (tracked at 8-byte-word
// precision, finer than the arena's cache-line dirty bits, because the
// flag word intentionally shares a line with flushed payload bytes) or
// still in flight as DMA.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/options.hpp"
#include "common/types.hpp"
#include "metrics/metrics.hpp"
#include "sim/hb.hpp"

namespace efac::sim {
class Simulator;
}  // namespace efac::sim

namespace efac::analysis {

/// Protocol mechanism that makes a conflicting access tolerable. A
/// conflict is "guarded" when either side carries a non-kNone guard.
enum class Guard : std::uint8_t {
  kNone = 0,
  kCrcVerify,       ///< reader verifies a checksum before trusting bytes
  kDurabilityFlag,  ///< reader checks the durability flag before trusting
  kMetaRevalidate,  ///< reader re-validates header/meta against the index
  kRecoveryScan,    ///< recovery walk: every candidate is CRC-re-verified
  kAtomicWord,      ///< 8-byte NVM/RDMA atomicity unit, last-writer-wins
  kDeclaredRacy,    ///< writer declares the race (in-place live update)
};
[[nodiscard]] const char* to_string(Guard g) noexcept;

enum class ViolationKind : std::uint8_t {
  kWriteWriteRace,        ///< write over an unordered write
  kWriteReadRace,         ///< write over an unordered unguarded read
  kReadWriteRace,         ///< read of an unordered completed write
  kReadOfInFlightWrite,   ///< read inside a DMA payload's arrival interval
  kUnflushedDurability,   ///< durability exposed while bytes are volatile
};
[[nodiscard]] const char* to_string(ViolationKind k) noexcept;

/// One reported violation; report() renders these with actor names.
struct Violation {
  ViolationKind kind = ViolationKind::kWriteWriteRace;
  MemOffset offset = 0;         ///< first conflicting byte
  std::size_t length = 0;       ///< extent of the acting access
  std::uint32_t actor = 0;      ///< acting side
  std::uint32_t prior_actor = 0;
  SimTime time = 0;             ///< virtual instant of the acting access
  SimTime prior_time = 0;       ///< prior access (DMA writes: arrival end)
  const char* site = "";        ///< annotation label of the acting side
  const char* prior_site = "";  ///< annotation label of the prior side
};

/// The sanitizer. One per cluster, owned by StoreBase when
/// StoreConfig::analysis.enabled; attaches itself to the Simulator as its
/// HbHooks and to the Arena as its access observer.
class Checker final : public sim::HbHooks {
 public:
  /// `registry` hosts the "analysis.*" counters (pass the store's registry
  /// so they land next to server counters; nullptr → private registry).
  Checker(sim::Simulator& sim, AnalysisOptions options,
          metrics::MetricsRegistry* registry = nullptr);
  ~Checker() override;
  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  // ------------------------------------------------------------- actors

  /// The shared server-domain actor (pre-registered at construction).
  [[nodiscard]] std::uint32_t server_actor() const noexcept { return 1; }

  /// Register a fresh client actor ("client-N"); returns its id.
  [[nodiscard]] std::uint32_t register_client_actor();

  [[nodiscard]] const std::string& actor_name(std::uint32_t actor) const;

  /// Make `actor` the current clock domain and label its ongoing
  /// operation for reports (label must have static storage duration).
  void switch_to(std::uint32_t actor, const char* label) noexcept;

  // ------------------------------------------------------------ HbHooks

  [[nodiscard]] std::uint32_t current_actor() const noexcept override {
    return current_;
  }
  void set_current_actor(std::uint32_t actor) noexcept override {
    current_ = actor;
  }
  void release(sim::VectorClock& into) override;
  void acquire(const sim::VectorClock& from) override;

  // ----------------------------------------------- memory hooks (Arena)

  void on_cpu_write(MemOffset off, std::size_t len);
  void on_dma_write(MemOffset off, std::size_t len, SimTime start,
                    SimTime end);
  void on_read(MemOffset off, std::size_t len);
  /// The volatility boundary moved: [off, off+len) is now persisted.
  void on_flush(MemOffset off, std::size_t len);
  /// Power failure: all shadow state is void (post-crash contents are the
  /// persisted image; recovery re-reads under its own guards).
  void on_crash();
  /// Pool recycling: drop shadow stamps so stale records of retired data
  /// never conflict with fresh allocations at the same offsets.
  void forget_region(MemOffset off, std::size_t len) noexcept;

  // ----------------------------------------------------- durability lint

  /// Fail (kUnflushedDurability) if any byte of [off, off+len) is dirty
  /// past the volatility boundary or still in flight as DMA. Call at every
  /// point that exposes the range as durable.
  void assert_durable(MemOffset off, std::size_t len, const char* site);

  // ------------------------------------------------- guards (AccessGuard)

  void push_guard(std::uint32_t actor, Guard guard, const char* site);
  void pop_guard(std::uint32_t actor) noexcept;

  // ------------------------------------------------------------- results

  [[nodiscard]] std::uint64_t unguarded_races() const noexcept {
    return unguarded_total_;
  }
  [[nodiscard]] std::uint64_t guarded_conflicts() const noexcept {
    return guarded_total_;
  }
  [[nodiscard]] std::uint64_t durability_violations() const noexcept {
    return durability_total_;
  }
  /// True iff no unguarded race and no durability violation was seen.
  [[nodiscard]] bool clean() const noexcept {
    return unguarded_total_ == 0 && durability_total_ == 0;
  }
  [[nodiscard]] const std::deque<Violation>& violations() const noexcept {
    return violations_;
  }
  /// Human-readable report of every retained violation plus totals.
  [[nodiscard]] std::string report() const;

 private:
  static constexpr std::size_t kPageBytes = 4096;
  static constexpr std::size_t kAtomic = 8;  ///< NVM failure-atomicity unit

  /// Shadow state for one 4 KiB arena page, allocated lazily on first
  /// access. Per byte: id (into records_, +1; 0 = none) of the last write
  /// and the last read. Per 8-byte word (one bit): volatile since the last
  /// flush covering it.
  struct Page {
    std::array<std::uint32_t, kPageBytes> last_write{};
    std::array<std::uint32_t, kPageBytes> last_read{};
    std::array<std::uint64_t, kPageBytes / kAtomic / 64> volatile_words{};
  };

  struct AccessRecord {
    std::uint32_t actor = 0;
    std::uint64_t epoch = 0;    ///< writer's own clock entry at access time
    SimTime time = 0;           ///< instant the access was recorded
    SimTime end = 0;            ///< DMA: arrival end; CPU: == time
    Guard guard = Guard::kNone;
    const char* site = "";
  };

  struct Counters {
    explicit Counters(metrics::MetricsRegistry& r)
        : reads_checked(r.counter("analysis.reads_checked")),
          writes_checked(r.counter("analysis.writes_checked")),
          conflicts_guarded(r.counter("analysis.conflicts_guarded")),
          races_unguarded(r.counter("analysis.races_unguarded")),
          durability_checks(r.counter("analysis.durability_checks")),
          durability_violations(r.counter("analysis.durability_violations")),
          durability_suppressed(r.counter("analysis.durability_suppressed")) {}
    metrics::Counter& reads_checked;
    metrics::Counter& writes_checked;
    metrics::Counter& conflicts_guarded;
    metrics::Counter& races_unguarded;
    metrics::Counter& durability_checks;
    metrics::Counter& durability_violations;
    metrics::Counter& durability_suppressed;
  };

  [[nodiscard]] Page& page(std::size_t index);
  [[nodiscard]] Page* find_page(std::size_t index) const noexcept;
  /// True iff `rec` happens-before the current actor's present instant.
  [[nodiscard]] bool ordered_before_current(const AccessRecord& rec) const;
  [[nodiscard]] Guard active_guard(std::uint32_t actor) const noexcept;
  [[nodiscard]] const char* active_site(std::uint32_t actor) const noexcept;
  std::uint32_t new_record(SimTime end, Guard guard, const char* site);
  void record_conflict(ViolationKind kind, MemOffset off, std::size_t len,
                       const AccessRecord& prior, Guard own_guard,
                       const char* own_site);
  void add_violation(Violation v, bool durability);
  void render(const Violation& v, std::string& out) const;

  void write_common(MemOffset off, std::size_t len, SimTime end);
  void mark_volatile(MemOffset off, std::size_t len);

  sim::Simulator& sim_;
  AnalysisOptions options_;
  std::uint32_t current_ = 0;
  std::uint32_t next_client_ = 1;
  std::vector<std::string> names_;           ///< actor id -> display name
  std::vector<const char*> labels_;          ///< actor id -> op label
  std::vector<sim::VectorClock> clocks_;     ///< actor id -> vector clock
  std::vector<std::vector<std::pair<Guard, const char*>>> guard_stacks_;
  std::unordered_map<std::size_t, std::unique_ptr<Page>> pages_;
  std::deque<AccessRecord> records_;
  std::deque<Violation> violations_;
  std::uint64_t unguarded_total_ = 0;
  std::uint64_t guarded_total_ = 0;
  std::uint64_t durability_total_ = 0;
  // Declaration order: owned_metrics_ (if any) must outlive stats_.
  std::unique_ptr<metrics::MetricsRegistry> owned_metrics_;
  metrics::MetricsRegistry& metrics_;
  Counters stats_;
};

/// RAII actor switch: sets the checker's current actor for the dynamic
/// extent of a scope, restoring the previous one on exit. Null checker →
/// no-op (the disabled-path pattern used everywhere).
class ActorScope {
 public:
  ActorScope(Checker* checker, std::uint32_t actor) noexcept
      : checker_(checker),
        saved_(checker != nullptr ? checker->current_actor() : 0) {
    if (checker_ != nullptr) checker_->set_current_actor(actor);
  }
  ~ActorScope() {
    if (checker_ != nullptr) checker_->set_current_actor(saved_);
  }
  ActorScope(const ActorScope&) = delete;
  ActorScope& operator=(const ActorScope&) = delete;

 private:
  Checker* checker_;
  std::uint32_t saved_;
};

/// RAII guard annotation: declares that accesses made by the current
/// actor within this scope are protected by `guard` (the annotation API
/// stores use at their read/verify sites). The guard is keyed by the
/// actor captured at construction, so it stays active across coroutine
/// suspensions — the resumed continuation runs under the same actor.
class AccessGuard {
 public:
  AccessGuard(Checker* checker, Guard guard, const char* site) noexcept
      : checker_(checker),
        actor_(checker != nullptr ? checker->current_actor() : 0) {
    if (checker_ != nullptr) checker_->push_guard(actor_, guard, site);
  }
  ~AccessGuard() {
    if (checker_ != nullptr) checker_->pop_guard(actor_);
  }
  AccessGuard(const AccessGuard&) = delete;
  AccessGuard& operator=(const AccessGuard&) = delete;

 private:
  Checker* checker_;
  std::uint32_t actor_;
};

}  // namespace efac::analysis
