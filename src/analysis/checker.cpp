#include "analysis/checker.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "sim/simulator.hpp"

namespace efac::analysis {

const char* to_string(Guard g) noexcept {
  switch (g) {
    case Guard::kNone: return "none";
    case Guard::kCrcVerify: return "crc-verify";
    case Guard::kDurabilityFlag: return "durability-flag";
    case Guard::kMetaRevalidate: return "meta-revalidate";
    case Guard::kRecoveryScan: return "recovery-scan";
    case Guard::kAtomicWord: return "atomic-word";
    case Guard::kDeclaredRacy: return "declared-racy";
  }
  return "unknown";
}

const char* to_string(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::kWriteWriteRace: return "write-write race";
    case ViolationKind::kWriteReadRace: return "write-read race";
    case ViolationKind::kReadWriteRace: return "read-write race";
    case ViolationKind::kReadOfInFlightWrite: return "read of in-flight write";
    case ViolationKind::kUnflushedDurability: return "unflushed durability";
  }
  return "unknown";
}

Checker::Checker(sim::Simulator& sim, AnalysisOptions options,
                 metrics::MetricsRegistry* registry)
    : sim_(sim),
      options_(options),
      names_{"external", "server"},
      labels_{"", ""},
      clocks_(2),
      guard_stacks_(2),
      owned_metrics_(registry == nullptr
                         ? std::make_unique<metrics::MetricsRegistry>()
                         : nullptr),
      metrics_(registry == nullptr ? *owned_metrics_ : *registry),
      stats_(metrics_) {
  // Epochs start at 1 so a fresh clock entry (0) never covers a real
  // access: C[r][w] >= rec.epoch must be false until an acquire happened.
  clocks_[server_actor()].resize(2, 0);
  clocks_[server_actor()][server_actor()] = 1;
  sim_.set_hb_hooks(this);
}

Checker::~Checker() {
  if (sim_.hb_hooks() == this) sim_.set_hb_hooks(nullptr);
}

std::uint32_t Checker::register_client_actor() {
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.push_back("client-" + std::to_string(next_client_++));
  labels_.push_back("");
  clocks_.emplace_back();
  clocks_.back().resize(id + 1, 0);
  clocks_.back()[id] = 1;
  guard_stacks_.emplace_back();
  return id;
}

const std::string& Checker::actor_name(std::uint32_t actor) const {
  EFAC_CHECK_MSG(actor < names_.size(), "unknown actor id " << actor);
  return names_[actor];
}

void Checker::switch_to(std::uint32_t actor, const char* label) noexcept {
  current_ = actor;
  if (actor < labels_.size()) labels_[actor] = label;
}

void Checker::release(sim::VectorClock& into) {
  if (current_ == 0) return;
  sim::VectorClock& c = clocks_[current_];
  if (into.size() < c.size()) into.resize(c.size(), 0);
  for (std::size_t i = 0; i < c.size(); ++i) {
    into[i] = std::max(into[i], c[i]);
  }
  ++c[current_];
}

void Checker::acquire(const sim::VectorClock& from) {
  if (current_ == 0 || from.empty()) return;
  sim::VectorClock& c = clocks_[current_];
  if (c.size() < from.size()) c.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) {
    c[i] = std::max(c[i], from[i]);
  }
}

Checker::Page& Checker::page(std::size_t index) {
  std::unique_ptr<Page>& slot = pages_[index];
  if (slot == nullptr) slot = std::make_unique<Page>();
  return *slot;
}

Checker::Page* Checker::find_page(std::size_t index) const noexcept {
  const auto it = pages_.find(index);
  return it == pages_.end() ? nullptr : it->second.get();
}

bool Checker::ordered_before_current(const AccessRecord& rec) const {
  const sim::VectorClock& c = clocks_[current_];
  return rec.actor < c.size() && c[rec.actor] >= rec.epoch;
}

Guard Checker::active_guard(std::uint32_t actor) const noexcept {
  const auto& stack = guard_stacks_[actor];
  return stack.empty() ? Guard::kNone : stack.back().first;
}

const char* Checker::active_site(std::uint32_t actor) const noexcept {
  const auto& stack = guard_stacks_[actor];
  if (!stack.empty()) return stack.back().second;
  return labels_[actor] != nullptr ? labels_[actor] : "";
}

std::uint32_t Checker::new_record(SimTime end, Guard guard,
                                  const char* site) {
  const sim::VectorClock& c = clocks_[current_];
  records_.push_back(AccessRecord{current_, c[current_], sim_.now(), end,
                                  guard, site});
  return static_cast<std::uint32_t>(records_.size());
}

void Checker::push_guard(std::uint32_t actor, Guard guard, const char* site) {
  if (actor == 0 || actor >= guard_stacks_.size()) return;
  guard_stacks_[actor].emplace_back(guard, site);
}

void Checker::pop_guard(std::uint32_t actor) noexcept {
  if (actor == 0 || actor >= guard_stacks_.size()) return;
  auto& stack = guard_stacks_[actor];
  if (!stack.empty()) stack.pop_back();
}

void Checker::record_conflict(ViolationKind kind, MemOffset off,
                              std::size_t len, const AccessRecord& prior,
                              Guard own_guard, const char* own_site) {
  // A conflict is tolerated when either side declares the protocol
  // mechanism that makes it safe (the reader verifies, the writer updates
  // an atomic word, ...). Only annotation-free conflicts are races.
  if (own_guard != Guard::kNone || prior.guard != Guard::kNone) {
    ++guarded_total_;
    ++stats_.conflicts_guarded;
    return;
  }
  add_violation(Violation{kind, off, len, current_, prior.actor, sim_.now(),
                          prior.end, own_site, prior.site},
                /*durability=*/false);
}

void Checker::add_violation(Violation v, bool durability) {
  if (durability) {
    ++durability_total_;
    ++stats_.durability_violations;
  } else {
    ++unguarded_total_;
    ++stats_.races_unguarded;
  }
  if (violations_.size() < options_.max_reports) violations_.push_back(v);
  if (options_.fail_fast) {
    std::string msg = "analysis violation: ";
    render(v, msg);
    throw CheckFailure(msg);
  }
}

void Checker::mark_volatile(MemOffset off, std::size_t len) {
  std::size_t pos = off;
  std::size_t remaining = len;
  while (remaining > 0) {
    const std::size_t base = pos % kPageBytes;
    const std::size_t in_page = std::min(remaining, kPageBytes - base);
    Page& pg = page(pos / kPageBytes);
    const std::size_t first = base / kAtomic;
    const std::size_t last = (base + in_page - 1) / kAtomic;
    for (std::size_t w = first; w <= last; ++w) {
      pg.volatile_words[w >> 6] |= std::uint64_t{1} << (w & 63);
    }
    pos += in_page;
    remaining -= in_page;
  }
}

void Checker::on_flush(MemOffset off, std::size_t len) {
  if (len == 0 || pages_.empty()) return;
  std::size_t pos = off;
  std::size_t remaining = len;
  while (remaining > 0) {
    const std::size_t base = pos % kPageBytes;
    const std::size_t in_page = std::min(remaining, kPageBytes - base);
    if (Page* pg = find_page(pos / kPageBytes)) {
      const std::size_t first = base / kAtomic;
      const std::size_t last = (base + in_page - 1) / kAtomic;
      for (std::size_t w = first; w <= last; ++w) {
        pg->volatile_words[w >> 6] &= ~(std::uint64_t{1} << (w & 63));
      }
    }
    pos += in_page;
    remaining -= in_page;
  }
}

void Checker::write_common(MemOffset off, std::size_t len, SimTime end) {
  const Guard guard = active_guard(current_);
  const char* site = active_site(current_);
  const std::uint32_t id = new_record(end, guard, site);
  ++stats_.writes_checked;
  std::uint32_t prev_write = 0;
  std::uint32_t prev_read = 0;
  std::size_t pos = off;
  std::size_t remaining = len;
  while (remaining > 0) {
    Page& pg = page(pos / kPageBytes);
    const std::size_t base = pos % kPageBytes;
    const std::size_t in_page = std::min(remaining, kPageBytes - base);
    for (std::size_t i = 0; i < in_page; ++i) {
      std::uint32_t& w = pg.last_write[base + i];
      if (w != 0 && w != prev_write) {
        prev_write = w;
        const AccessRecord& rec = records_[w - 1];
        if (rec.actor != current_ && !ordered_before_current(rec)) {
          record_conflict(ViolationKind::kWriteWriteRace, pos + i, len, rec,
                          guard, site);
        }
      }
      const std::uint32_t r = pg.last_read[base + i];
      if (r != 0 && r != prev_read) {
        prev_read = r;
        const AccessRecord& rec = records_[r - 1];
        if (rec.actor != current_ && !ordered_before_current(rec)) {
          record_conflict(ViolationKind::kWriteReadRace, pos + i, len, rec,
                          guard, site);
        }
      }
      w = id;
    }
    pos += in_page;
    remaining -= in_page;
  }
  mark_volatile(off, len);
}

void Checker::on_cpu_write(MemOffset off, std::size_t len) {
  if (current_ == 0 || len == 0) return;
  write_common(off, len, sim_.now());
}

void Checker::on_dma_write(MemOffset off, std::size_t len, SimTime start,
                           SimTime end) {
  static_cast<void>(start);
  if (current_ == 0 || len == 0) return;
  write_common(off, len, end);
}

void Checker::on_read(MemOffset off, std::size_t len) {
  if (current_ == 0 || len == 0) return;
  ++stats_.reads_checked;
  const SimTime now = sim_.now();
  const Guard guard = active_guard(current_);
  const char* site = active_site(current_);
  const std::uint32_t id = new_record(now, guard, site);
  std::uint32_t prev_write = 0;
  std::size_t pos = off;
  std::size_t remaining = len;
  while (remaining > 0) {
    Page& pg = page(pos / kPageBytes);
    const std::size_t base = pos % kPageBytes;
    const std::size_t in_page = std::min(remaining, kPageBytes - base);
    for (std::size_t i = 0; i < in_page; ++i) {
      const std::uint32_t w = pg.last_write[base + i];
      if (w != 0 && w != prev_write) {
        prev_write = w;
        const AccessRecord& rec = records_[w - 1];
        if (rec.actor != current_) {
          if (now < rec.end) {
            // The payload is still materializing chunk-by-chunk: even an
            // HB-ordered reader would see a torn prefix.
            record_conflict(ViolationKind::kReadOfInFlightWrite, pos + i,
                            len, rec, guard, site);
          } else if (!ordered_before_current(rec)) {
            record_conflict(ViolationKind::kReadWriteRace, pos + i, len, rec,
                            guard, site);
          }
        }
      }
      pg.last_read[base + i] = id;
    }
    pos += in_page;
    remaining -= in_page;
  }
}

void Checker::assert_durable(MemOffset off, std::size_t len,
                             const char* site) {
  if (len == 0) return;
  ++stats_.durability_checks;
  const SimTime now = sim_.now();
  bool found = false;
  MemOffset bad = 0;
  const AccessRecord* in_flight = nullptr;

  // 1. Volatile words: written past the last flush covering them. Tracked
  //    at 8-byte-word precision — the arena's line-granular dirty bits
  //    would false-positive on payload bytes sharing a line with the
  //    (intentionally unflushed) durability flag word.
  std::size_t pos = off;
  std::size_t remaining = len;
  while (remaining > 0 && !found) {
    const std::size_t base = pos % kPageBytes;
    const std::size_t in_page = std::min(remaining, kPageBytes - base);
    if (const Page* pg = find_page(pos / kPageBytes)) {
      const std::size_t first = base / kAtomic;
      const std::size_t last = (base + in_page - 1) / kAtomic;
      for (std::size_t w = first; w <= last; ++w) {
        if ((pg->volatile_words[w >> 6] >> (w & 63)) & 1u) {
          found = true;
          bad = pos - base + w * kAtomic;
          break;
        }
      }
    }
    pos += in_page;
    remaining -= in_page;
  }

  // 2. In-flight DMA: bytes not even fully placed yet.
  if (!found) {
    std::uint32_t prev_write = 0;
    pos = off;
    remaining = len;
    while (remaining > 0 && in_flight == nullptr) {
      const std::size_t base = pos % kPageBytes;
      const std::size_t in_page = std::min(remaining, kPageBytes - base);
      if (const Page* pg = find_page(pos / kPageBytes)) {
        for (std::size_t i = 0; i < in_page; ++i) {
          const std::uint32_t w = pg->last_write[base + i];
          if (w != 0 && w != prev_write) {
            prev_write = w;
            const AccessRecord& rec = records_[w - 1];
            if (rec.end > now) {
              in_flight = &rec;
              bad = pos + i;
              break;
            }
          }
        }
      }
      pos += in_page;
      remaining -= in_page;
    }
    found = in_flight != nullptr;
  }

  if (!found) return;
  if (options_.allow_unflushed_durability) {
    ++stats_.durability_suppressed;
    return;
  }
  add_violation(
      Violation{ViolationKind::kUnflushedDurability, bad, len, current_,
                in_flight != nullptr ? in_flight->actor : 0, now,
                in_flight != nullptr ? in_flight->end : 0, site,
                in_flight != nullptr ? in_flight->site : ""},
      /*durability=*/true);
}

void Checker::forget_region(MemOffset off, std::size_t len) noexcept {
  if (len == 0 || pages_.empty()) return;
  std::size_t pos = off;
  std::size_t remaining = len;
  while (remaining > 0) {
    const std::size_t base = pos % kPageBytes;
    const std::size_t in_page = std::min(remaining, kPageBytes - base);
    if (Page* pg = find_page(pos / kPageBytes)) {
      std::fill_n(pg->last_write.data() + base, in_page, 0u);
      std::fill_n(pg->last_read.data() + base, in_page, 0u);
      const std::size_t first = base / kAtomic;
      const std::size_t last = (base + in_page - 1) / kAtomic;
      for (std::size_t w = first; w <= last; ++w) {
        pg->volatile_words[w >> 6] &= ~(std::uint64_t{1} << (w & 63));
      }
    }
    pos += in_page;
    remaining -= in_page;
  }
}

void Checker::on_crash() {
  // Post-crash contents are exactly the persisted image: every shadow
  // stamp (including volatility — nothing dirty survives as "pending") is
  // void. Recovery re-reads under its own kRecoveryScan guards.
  pages_.clear();
  records_.clear();
}

void Checker::render(const Violation& v, std::string& out) const {
  std::ostringstream os;
  os << '[' << to_string(v.kind) << "] "
     << (v.actor < names_.size() ? names_[v.actor] : "actor?");
  if (v.site != nullptr && *v.site != '\0') os << " (" << v.site << ')';
  os << " at t=" << v.time << "ns";
  if (v.kind == ViolationKind::kUnflushedDurability) {
    if (v.prior_actor != 0) {
      os << ", in-flight write by "
         << (v.prior_actor < names_.size() ? names_[v.prior_actor]
                                           : "actor?")
         << " arriving t=" << v.prior_time << "ns";
    } else {
      os << ", range written but never flushed past the volatility "
            "boundary";
    }
  } else {
    os << " vs "
       << (v.prior_actor < names_.size() ? names_[v.prior_actor] : "actor?");
    if (v.prior_site != nullptr && *v.prior_site != '\0') {
      os << " (" << v.prior_site << ')';
    }
    os << " at t=" << v.prior_time << "ns";
  }
  os << ", arena bytes [" << v.offset << ", +" << v.length << ')';
  out += os.str();
}

std::string Checker::report() const {
  std::ostringstream os;
  os << "analysis: " << unguarded_total_ << " unguarded race(s), "
     << durability_total_ << " durability violation(s), " << guarded_total_
     << " guarded conflict(s)\n";
  for (const Violation& v : violations_) {
    std::string line;
    render(v, line);
    os << "  " << line << '\n';
  }
  const std::uint64_t total = unguarded_total_ + durability_total_;
  if (total > violations_.size()) {
    os << "  ... " << (total - violations_.size())
       << " further violation(s) not retained (max_reports="
       << options_.max_reports << ")\n";
  }
  return os.str();
}

}  // namespace efac::analysis
