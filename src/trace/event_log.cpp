#include "trace/event_log.hpp"

namespace efac::trace {

const char* const kEventNames[static_cast<std::size_t>(EventType::kCount)] = {
    "op_begin",     "op_end",   "rpc_issue", "rpc_deliver",
    "qp_verb",      "vf_scan",  "vf_flush",  "flag_set",
    "vf_timeout",   "gc_copy",  "gc_switch", "retry",
    "backoff",      "fault",    "get_path",  "obj_bind",
    "slo_violation",
};

const char* const kOpKindNames[3] = {"PUT", "GET", "DEL"};

const char* const kVerbNames[static_cast<std::size_t>(Verb::kVerbCount)] = {
    "READ", "WRITE", "WRITE_IMM", "SEND", "CAS", "FETCH_ADD", "COMMIT",
    "WRITE_FAULTED",
};

const char* const kGetPathNames[static_cast<std::size_t>(
    GetPath::kPathCount)] = {
    "fast one-sided", "rpc-only mode",    "cleaning active",
    "flag unset",     "index-entry miss", "read error",
    "adaptive rpc-first", "durability-hint lease", "stale version",
};

EventLog::EventLog(sim::Simulator& sim, std::size_t capacity,
                   std::string actor_prefix)
    : sim_(sim), actor_prefix_(std::move(actor_prefix)) {
  ring_.reserve(capacity == 0 ? 1 : capacity);
}

std::uint16_t EventLog::register_track(std::string name) {
  tracks_.push_back(actor_prefix_ + std::move(name));
  return static_cast<std::uint16_t>(tracks_.size() - 1);
}

void EventLog::emit(std::uint16_t track, std::uint32_t op, EventType type,
                    std::uint8_t aux, std::uint64_t a, std::uint64_t b) {
  Event e;
  e.t = static_cast<std::uint64_t>(sim_.now());
  e.a = a;
  e.b = b;
  e.op = op;
  e.track = track;
  e.type = static_cast<std::uint8_t>(type);
  e.aux = aux;
  if (ring_.size() < ring_.capacity()) {
    ring_.push_back(e);
  } else {
    // Overwrite the oldest slot: the ring holds the most recent
    // `capacity` events, which is the right bias for tail forensics.
    ring_[total_ % ring_.capacity()] = e;
  }
  ++total_;
}

EventLog::Snapshot EventLog::snapshot(std::string label) const {
  Snapshot snap;
  snap.label = std::move(label);
  snap.tracks = tracks_;
  snap.dropped = dropped();
  snap.events.reserve(ring_.size());
  if (total_ <= ring_.capacity()) {
    snap.events = ring_;
  } else {
    const std::size_t head = total_ % ring_.capacity();
    snap.events.insert(snap.events.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
                       ring_.end());
    snap.events.insert(snap.events.end(), ring_.begin(),
                       ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return snap;
}

}  // namespace efac::trace
