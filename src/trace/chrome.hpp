// Flight-recorder exporters and validators.
//
// Two formats over EventLog::Snapshot:
//   * Chrome trace-event JSON ("{\"traceEvents\": [...]}") — loads
//     directly in Perfetto / chrome://tracing. Virtual-ns timestamps are
//     exported as microseconds (the trace-event unit); op lifecycles and
//     QP verbs become complete ("X") slices, everything else becomes
//     instants, and the causal chain (RPC issue→deliver, object
//     bind→durability flag) becomes flow arrows ("s"/"f").
//   * A compact binary dump ("EFTR" v1): the raw 32-byte records plus the
//     track/label tables — what bench/trace_inspect consumes for
//     tail-latency attribution.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "trace/event_log.hpp"

namespace efac::trace {

/// One Perfetto "process" per snapshot (a snapshot is one adopted store
/// log, e.g. one bench point); tracks become threads.
[[nodiscard]] std::string to_chrome_trace(
    const std::vector<EventLog::Snapshot>& snapshots);
void write_chrome_trace(std::ostream& os,
                        const std::vector<EventLog::Snapshot>& snapshots);

/// Golden-schema validation of the Chrome export (mirrors
/// metrics::validate_bench_json): top-level object with a "traceEvents"
/// array whose elements carry well-typed ph/pid/tid/name/ts fields, "X"
/// slices a "dur", flow events an "id"; no trailing data.
[[nodiscard]] Status validate_chrome_trace(std::string_view doc);

/// Compact binary dump: magic "EFTR", version, then per snapshot the
/// label, track table, drop count and raw 32-byte little-endian records.
void write_binary(std::ostream& os,
                  const std::vector<EventLog::Snapshot>& snapshots);
[[nodiscard]] std::string to_binary(
    const std::vector<EventLog::Snapshot>& snapshots);

/// Parse a binary dump back into snapshots (trace_inspect's reader).
/// All-or-nothing: on any error `*out` is left empty — no torn partial
/// snapshots. Fuzzed by fuzz/eftr_fuzz.cpp (docs/STATIC_ANALYSIS.md).
[[nodiscard]] Status read_binary(std::string_view data,
                                 std::vector<EventLog::Snapshot>* out);

}  // namespace efac::trace
