#include "trace/chrome.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>

#include "common/json_reader.hpp"

namespace efac::trace {
namespace {

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Finite double for an args value (%.9g matches the bench exporter).
void append_double_arg(std::string& out, double value) {
  if (!std::isfinite(value)) value = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  out += buf;
}

/// Virtual ns → trace-event µs, with enough digits to keep ns resolution.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

struct EventWriter {
  std::string& out;
  bool first = true;

  void open(const char* ph, std::string_view name, std::string_view cat,
            std::size_t pid, std::uint64_t tid, std::uint64_t ts_ns) {
    out += first ? "\n    {" : ",\n    {";
    first = false;
    out += "\"ph\": \"";
    out += ph;
    out += "\", \"name\": ";
    append_escaped(out, name);
    out += ", \"cat\": \"";
    out += cat;
    out += "\", \"pid\": ";
    out += std::to_string(pid);
    out += ", \"tid\": ";
    out += std::to_string(tid);
    out += ", \"ts\": ";
    append_us(out, ts_ns);
  }
  void close() { out += '}'; }
};

/// Flow ids must be unique per causal chain: RPC flows key on
/// (qp id, call id); durability flows key on the object offset with a
/// category-discriminating high bit.
std::uint64_t rpc_flow_id(std::uint64_t call_id, std::uint64_t qp_id) {
  return (qp_id << 40) ^ call_id;
}
std::uint64_t durability_flow_id(std::uint64_t object_off) {
  return (1ULL << 63) | object_off;
}

void append_snapshot(std::string& out, const EventLog::Snapshot& snap,
                     std::size_t pid, EventWriter& w) {
  // Process / thread naming metadata.
  w.open("M", "process_name", "__metadata", pid, 0, 0);
  out += ", \"args\": {\"name\": ";
  append_escaped(out, snap.label.empty() ? "efac trace" : snap.label);
  out += "}";
  w.close();
  for (std::size_t t = 0; t < snap.tracks.size(); ++t) {
    w.open("M", "thread_name", "__metadata", pid, t + 1, 0);
    out += ", \"args\": {\"name\": ";
    append_escaped(out, snap.tracks[t]);
    out += "}";
    w.close();
  }

  // Pair op begin/end per (track, op) to emit complete slices.
  std::map<std::uint64_t, const Event*> open_ops;
  for (const Event& e : snap.events) {
    const auto type = static_cast<EventType>(e.type);
    const std::uint64_t tid = e.track + 1u;
    switch (type) {
      case EventType::kOpBegin:
        open_ops[(static_cast<std::uint64_t>(e.track) << 32) | e.op] = &e;
        break;
      case EventType::kOpEnd: {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(e.track) << 32) | e.op;
        const auto it = open_ops.find(key);
        if (it == open_ops.end()) break;  // begin fell off the ring
        const Event& begin = *it->second;
        const char* name = e.aux < 3 ? kOpKindNames[e.aux] : "OP";
        w.open("X", name, "op", pid, tid, begin.t);
        out += ", \"dur\": ";
        append_us(out, e.t - begin.t);
        out += ", \"args\": {\"op\": ";
        out += std::to_string(e.op);
        out += ", \"status\": ";
        out += std::to_string(e.a);
        out += "}";
        w.close();
        open_ops.erase(it);
        break;
      }
      case EventType::kQpVerb: {
        const char* name =
            e.aux < static_cast<std::uint8_t>(Verb::kVerbCount)
                ? kVerbNames[e.aux]
                : "VERB";
        w.open("X", name, "qp", pid, tid, e.t);
        out += ", \"dur\": ";
        append_us(out, e.a > e.t ? e.a - e.t : 0);
        out += ", \"args\": {\"bytes\": ";
        out += std::to_string(e.b);
        out += ", \"op\": ";
        out += std::to_string(e.op);
        out += "}";
        w.close();
        break;
      }
      case EventType::kRpcIssue:
      case EventType::kRpcDeliver: {
        const bool issue = type == EventType::kRpcIssue;
        w.open("i", issue ? "rpc_issue" : "rpc_deliver", "rpc", pid, tid,
               e.t);
        out += ", \"s\": \"t\", \"args\": {\"call\": ";
        out += std::to_string(e.a);
        out += ", \"qp\": ";
        out += std::to_string(e.b);
        out += ", \"opcode\": ";
        out += std::to_string(e.aux);
        out += "}";
        w.close();
        w.open(issue ? "s" : "f", "rpc", "rpc", pid, tid, e.t);
        if (!issue) out += ", \"bp\": \"e\"";
        out += ", \"id\": ";
        out += std::to_string(rpc_flow_id(e.a, e.b));
        w.close();
        break;
      }
      case EventType::kObjBind:
      case EventType::kFlagSet: {
        const bool bind = type == EventType::kObjBind;
        w.open("i", bind ? "obj_bind" : "flag_set", "durability", pid, tid,
               e.t);
        out += ", \"s\": \"t\", \"args\": {\"object_off\": ";
        out += std::to_string(e.a);
        out += "}";
        w.close();
        w.open(bind ? "s" : "f", "durability", "durability", pid, tid, e.t);
        if (!bind) out += ", \"bp\": \"e\"";
        out += ", \"id\": ";
        out += std::to_string(durability_flow_id(e.a));
        w.close();
        break;
      }
      case EventType::kGetPath: {
        w.open("i", "get_path", "client", pid, tid, e.t);
        out += ", \"s\": \"t\", \"args\": {\"path\": ";
        append_escaped(
            out, e.aux < static_cast<std::uint8_t>(GetPath::kPathCount)
                     ? kGetPathNames[e.aux]
                     : "?");
        out += ", \"op\": ";
        out += std::to_string(e.op);
        out += "}";
        w.close();
        break;
      }
      case EventType::kSloViolation: {
        w.open("i", "slo_violation", "telemetry", pid, tid, e.t);
        out += ", \"s\": \"t\", \"args\": {\"rule\": ";
        out += std::to_string(e.aux);
        out += ", \"value\": ";
        append_double_arg(out, std::bit_cast<double>(e.a));
        out += ", \"threshold\": ";
        append_double_arg(out, std::bit_cast<double>(e.b));
        out += "}";
        w.close();
        break;
      }
      default: {
        const char* name =
            e.type < static_cast<std::uint8_t>(EventType::kCount)
                ? kEventNames[e.type]
                : "event";
        w.open("i", name, "event", pid, tid, e.t);
        out += ", \"s\": \"t\", \"args\": {\"a\": ";
        out += std::to_string(e.a);
        out += ", \"b\": ";
        out += std::to_string(e.b);
        out += ", \"aux\": ";
        out += std::to_string(e.aux);
        out += ", \"op\": ";
        out += std::to_string(e.op);
        out += "}";
        w.close();
        break;
      }
    }
  }
  // Ops still open at snapshot time: record them as instants so the
  // viewer shows the unfinished work instead of silently dropping it.
  for (const auto& [key, begin] : open_ops) {
    (void)key;
    const char* name = begin->aux < 3 ? kOpKindNames[begin->aux] : "OP";
    w.open("i", name, "op.unfinished", pid, begin->track + 1u, begin->t);
    out += ", \"s\": \"t\", \"args\": {\"op\": ";
    out += std::to_string(begin->op);
    out += "}";
    w.close();
  }
}

Status invalid(std::string message) {
  return Status{StatusCode::kInvalidArgument, std::move(message)};
}

// ------------------------------------------------------------ binary I/O

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out += static_cast<char>((v >> (8 * i)) & 0xff);
  }
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out += static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

struct BinReader {
  std::string_view data;
  std::size_t pos = 0;
  bool ok = true;

  bool have(std::size_t n) {
    if (data.size() - pos < n) ok = false;
    return ok;
  }
  std::uint32_t u32() {
    if (!have(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!have(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data[pos + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    if (!have(len)) return {};
    std::string s{data.substr(pos, len)};
    pos += len;
    return s;
  }
};

constexpr char kMagic[4] = {'E', 'F', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

std::string to_chrome_trace(const std::vector<EventLog::Snapshot>& snapshots) {
  std::string out;
  out += "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [";
  EventWriter w{out};
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    append_snapshot(out, snapshots[i], i + 1, w);
  }
  out += w.first ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<EventLog::Snapshot>& snapshots) {
  os << to_chrome_trace(snapshots);
}

Status validate_chrome_trace(std::string_view doc) {
  json::Parser p{doc, 0, {}};
  if (!p.expect('{')) return invalid("document is not a JSON object");
  bool seen_events = false;
  if (!p.consume('}')) {
    do {
      const std::string key = p.parse_string();
      if (p.failed()) break;
      if (!p.expect(':')) break;
      if (key == "traceEvents") {
        if (!p.expect('[')) return invalid("traceEvents is not an array");
        seen_events = true;
        std::size_t index = 0;
        if (!p.consume(']')) {
          do {
            if (!p.expect('{')) {
              return invalid("traceEvents[" + std::to_string(index) +
                             "] is not an object");
            }
            std::string ph;
            bool seen_name = false;
            bool seen_pid = false;
            bool seen_tid = false;
            bool seen_ts = false;
            bool seen_dur = false;
            bool seen_id = false;
            if (!p.consume('}')) {
              do {
                const std::string field = p.parse_string();
                if (!p.expect(':')) break;
                if (field == "ph") {
                  ph = p.parse_string();
                } else if (field == "name" || field == "cat") {
                  p.parse_string();
                  seen_name = seen_name || field == "name";
                } else if (field == "pid" || field == "tid" ||
                           field == "ts" || field == "dur" ||
                           field == "id") {
                  const json::Parser::Number num = p.parse_number();
                  if (p.failed()) break;
                  if ((field == "pid" || field == "tid") && !num.integral) {
                    return invalid("traceEvents[" + std::to_string(index) +
                                   "]." + field + " is not an integer");
                  }
                  seen_pid = seen_pid || field == "pid";
                  seen_tid = seen_tid || field == "tid";
                  seen_ts = seen_ts || field == "ts";
                  seen_dur = seen_dur || field == "dur";
                  seen_id = seen_id || field == "id";
                } else {
                  p.skip_value();
                }
                if (p.failed()) break;
              } while (p.consume(','));
              if (!p.expect('}')) {
                return invalid("traceEvents[" + std::to_string(index) +
                               "] is malformed");
              }
            }
            if (p.failed()) break;
            const std::string at =
                "traceEvents[" + std::to_string(index) + "]";
            if (ph.size() != 1 ||
                std::string_view{"XisfMbe"}.find(ph[0]) ==
                    std::string_view::npos) {
              return invalid(at + " has bad \"ph\"");
            }
            if (!seen_name) return invalid(at + " is missing \"name\"");
            if (!seen_pid) return invalid(at + " is missing \"pid\"");
            if (ph != "M" && !seen_tid) {
              return invalid(at + " is missing \"tid\"");
            }
            if (ph != "M" && !seen_ts) {
              return invalid(at + " is missing \"ts\"");
            }
            if (ph == "X" && !seen_dur) {
              return invalid(at + " is missing \"dur\"");
            }
            if ((ph == "s" || ph == "f") && !seen_id) {
              return invalid(at + " is missing flow \"id\"");
            }
            ++index;
          } while (p.consume(','));
          if (!p.expect(']')) return invalid("traceEvents array malformed");
        }
      } else {
        p.skip_value();
      }
      if (p.failed()) break;
    } while (p.consume(','));
    if (!p.failed()) p.expect('}');
  }
  if (p.failed()) return invalid("parse error: " + p.error);
  p.skip_ws();
  if (p.pos != doc.size()) return invalid("trailing data after document");
  if (!seen_events) return invalid("missing \"traceEvents\"");
  return Status::ok();
}

std::string to_binary(const std::vector<EventLog::Snapshot>& snapshots) {
  std::string out;
  out.append(kMagic, sizeof kMagic);
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(snapshots.size()));
  for (const EventLog::Snapshot& snap : snapshots) {
    put_u32(out, static_cast<std::uint32_t>(snap.label.size()));
    out += snap.label;
    put_u32(out, static_cast<std::uint32_t>(snap.tracks.size()));
    for (const std::string& t : snap.tracks) {
      put_u32(out, static_cast<std::uint32_t>(t.size()));
      out += t;
    }
    put_u64(out, snap.dropped);
    put_u64(out, snap.events.size());
    for (const Event& e : snap.events) {
      put_u64(out, e.t);
      put_u64(out, e.a);
      put_u64(out, e.b);
      put_u32(out, e.op);
      put_u32(out, (static_cast<std::uint32_t>(e.aux) << 24) |
                       (static_cast<std::uint32_t>(e.type) << 16) | e.track);
    }
  }
  return out;
}

void write_binary(std::ostream& os,
                  const std::vector<EventLog::Snapshot>& snapshots) {
  const std::string blob = to_binary(snapshots);
  os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
}

Status read_binary(std::string_view data, std::vector<EventLog::Snapshot>* out) {
  // Contract (locked by FlightRecorder.RejectedDumpLeavesOutputEmpty and
  // the eftr_fuzz target): on ANY error *out is left empty — a torn
  // half-parsed snapshot must never reach trace_inspect's attribution.
  out->clear();
  BinReader r{data};
  if (data.size() < 12 || data.compare(0, 4, kMagic, 4) != 0) {
    return invalid("not an EFTR trace dump");
  }
  r.pos = 4;
  const std::uint32_t version = r.u32();
  if (version != kVersion) {
    return invalid("unsupported EFTR version " + std::to_string(version));
  }
  const std::uint32_t snap_count = r.u32();
  for (std::uint32_t s = 0; s < snap_count && r.ok; ++s) {
    EventLog::Snapshot snap;
    snap.label = r.str();
    const std::uint32_t track_count = r.u32();
    for (std::uint32_t t = 0; t < track_count && r.ok; ++t) {
      snap.tracks.push_back(r.str());
    }
    snap.dropped = r.u64();
    const std::uint64_t event_count = r.u64();
    if (!r.ok || (data.size() - r.pos) / 32 < event_count) {
      out->clear();
      return invalid("truncated EFTR dump");
    }
    snap.events.reserve(event_count);
    for (std::uint64_t i = 0; i < event_count; ++i) {
      Event e;
      e.t = r.u64();
      e.a = r.u64();
      e.b = r.u64();
      e.op = r.u32();
      const std::uint32_t packed = r.u32();
      e.track = static_cast<std::uint16_t>(packed & 0xffff);
      e.type = static_cast<std::uint8_t>((packed >> 16) & 0xff);
      e.aux = static_cast<std::uint8_t>(packed >> 24);
      snap.events.push_back(e);
    }
    if (!r.ok) break;  // don't surface the torn snapshot
    out->push_back(std::move(snap));
  }
  if (!r.ok) {
    out->clear();
    return invalid("truncated EFTR dump");
  }
  if (r.pos != data.size()) {
    out->clear();
    return invalid("trailing data after EFTR dump");
  }
  return Status::ok();
}

}  // namespace efac::trace
