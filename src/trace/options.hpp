// Flight-recorder knobs, embedded in StoreConfig (mirrors
// analysis::AnalysisOptions): a tiny standalone header so config.hpp does
// not pull in the event-log machinery.
#pragma once

#include <cstddef>
#include <string>

namespace efac::trace {

struct TraceOptions {
  /// Off by default: no EventLog is created and every emission site
  /// reduces to one null-pointer test.
  bool enabled = false;
  /// Ring capacity in events (32 bytes each). Oldest events are dropped
  /// once full; the drop count is kept for the exporters.
  std::size_t capacity = 1u << 15;
  /// Prepended to every actor track name registered on this store's
  /// EventLog ("s2/" turns "server" into "s2/server"). Sharded clusters
  /// set "s<shard>/" so each shard's actors stay distinguishable in
  /// merged exports; empty (the default, and always for single-shard
  /// clusters) leaves names byte-identical to pre-sharding traces.
  std::string actor_prefix;
};

}  // namespace efac::trace
