// Flight recorder: a bounded ring of typed lifecycle events on the
// simulator clock.
//
// Design rules (they are what make the recorder safe to leave compiled
// into every path):
//   * Emission never schedules simulator events and never draws from any
//     RNG — it only reads sim.now() and appends to a preallocated ring —
//     so the DES schedule (and dispatch hash) is bit-identical whether
//     recording is on or off.
//   * With recording disabled no EventLog exists and each emission site
//     costs exactly one branch on a null pointer (the analysis-checker
//     pattern).
//   * Events are 32-byte PODs; the meaning of the a/b payload words is
//     per-type (see EventType). Causal joins (RPC issue→deliver, object
//     bind→durability flag) are reconstructed by the exporters from the
//     payload words, so the hot path never threads IDs across components.
//
// Actors (server, verifier, cleaner, fault injector, each client) hold a
// Recorder — a {log, track, current-op} triple — by value; components that
// serve many actors (QueuePair, rpc::Connection) borrow a pointer to their
// owner's Recorder so per-op attribution follows the owner automatically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace efac::trace {

enum class EventType : std::uint8_t {
  kOpBegin = 0,   ///< client op starts; aux=OpKind
  kOpEnd,         ///< client op finishes; aux=OpKind, a=status code
  kRpcIssue,      ///< client posts an RPC; a=call_id, b=qp_id, aux=opcode
  kRpcDeliver,    ///< server worker picks a request up; a=call_id, b=src_qp,
                  ///< aux=opcode
  kQpVerb,        ///< one-sided verb posted; aux=Verb, a=completion time
                  ///< (virtual ns, known analytically at post time), b=bytes
  kVerifyScan,    ///< verifier pops an object; a=object off, b=queue depth
  kVerifyFlush,   ///< verifier flushed an object; a=object off, b=bytes
  kFlagSet,       ///< durability flag set; a=object off
  kVerifyTimeout, ///< verifier invalidated a timed-out object; a=object off
  kGcCopy,        ///< cleaner migrated an object; a=old off, b=new off
  kGcSwitch,      ///< cleaning stage transition; aux=stage code
  kRetry,         ///< client retry wrapper re-issues; a=attempt, b=status
  kBackoff,       ///< client backs off; a=delay ns, b=attempt
  kFault,         ///< fault injector fired; aux=site, a=occurrence index
  kGetPath,       ///< GET path resolution; aux=GetPath
  kObjBind,       ///< client learned its op's object offset; a=object off
  kSloViolation,  ///< SLO watchdog rule tripped; aux=rule index,
                  ///< a=bit_cast<u64>(value), b=bit_cast<u64>(threshold)
  kCount
};

/// Names indexed by EventType.
extern const char* const kEventNames[static_cast<std::size_t>(
    EventType::kCount)];

enum class OpKind : std::uint8_t { kPut = 0, kGet, kDel };
extern const char* const kOpKindNames[3];

/// One-sided verb codes for kQpVerb.aux.
enum class Verb : std::uint8_t {
  kRead = 0,
  kWrite,
  kWriteImm,
  kSend,
  kCas,
  kFetchAdd,
  kCommit,
  kWriteFaulted,  ///< fault-extended WRITE (timeout window)
  kVerbCount
};
extern const char* const kVerbNames[static_cast<std::size_t>(
    Verb::kVerbCount)];

/// GET path resolution codes for kGetPath.aux.
enum class GetPath : std::uint8_t {
  kFastOneSided = 0,   ///< pure one-sided read succeeded
  kRpcOnlyMode,        ///< client configured/forced onto the RPC path
  kCleaningActive,     ///< hybrid fallback: server is log-cleaning
  kFlagUnset,          ///< durability flag not yet set → RPC fallback
  kEntryMiss,          ///< index entry missing/stale → RPC fallback
  kReadError,          ///< one-sided read failed → RPC fallback
  kAdaptiveRpcFirst,   ///< adaptive tracker tripped: one-sided read skipped
  kDurabilityHint,     ///< durability-hint lease active: one-sided skipped
  kStaleVersion,       ///< entry offset moved since the last durable read:
                       ///< fresh overwrite, object read skipped
  kPathCount
};
extern const char* const kGetPathNames[static_cast<std::size_t>(
    GetPath::kPathCount)];

/// 32-byte POD record. Timestamps are virtual nanoseconds.
struct Event {
  std::uint64_t t = 0;    ///< emission time (sim.now())
  std::uint64_t a = 0;    ///< per-type payload (see EventType)
  std::uint64_t b = 0;    ///< per-type payload
  std::uint32_t op = 0;   ///< causal op id (0 = not op-scoped)
  std::uint16_t track = 0;
  std::uint8_t type = 0;  ///< EventType
  std::uint8_t aux = 0;   ///< per-type small payload

  friend bool operator==(const Event&, const Event&) = default;
};
static_assert(sizeof(Event) == 32, "Event must stay a 32-byte POD");

/// Bounded ring of events plus the track-name table. One per store; every
/// actor in the cluster (server workers, verifier, cleaner, injector,
/// clients) appends to the same log so the exporters see a global order.
class EventLog {
 public:
  /// `actor_prefix` is prepended to every registered track name (empty =
  /// names unchanged); sharded clusters pass "s<shard>/" so tracks from
  /// different shards stay distinguishable when snapshots are merged.
  EventLog(sim::Simulator& sim, std::size_t capacity,
           std::string actor_prefix = {});

  /// Register an actor track; returns its id. Registration order is
  /// deterministic (construction order), which keeps exports stable.
  std::uint16_t register_track(std::string name);

  /// Append one event at the current virtual time. Never schedules,
  /// never allocates once the ring is warm.
  void emit(std::uint16_t track, std::uint32_t op, EventType type,
            std::uint8_t aux, std::uint64_t a = 0, std::uint64_t b = 0);

  /// Allocate a fresh causal op id (monotonic, never 0).
  [[nodiscard]] std::uint32_t next_op_id() noexcept { return ++last_op_; }

  /// Publish `op` as the simulator's current op context for this log. The
  /// context follows the running coroutine across suspensions (captured
  /// and republished by every awaiter), which is what keeps per-op
  /// attribution correct when a client has several ops in flight.
  void set_context_op(std::uint32_t op) noexcept {
    sim_.set_op_context({this, op});
  }
  /// The current context op if it belongs to this log, else 0.
  [[nodiscard]] std::uint32_t context_op() const noexcept {
    const sim::Simulator::OpContext ctx = sim_.op_context();
    return ctx.domain == this ? ctx.op : 0;
  }

  [[nodiscard]] std::uint64_t total_emitted() const noexcept {
    return total_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return total_ > ring_.capacity() ? total_ - ring_.capacity() : 0;
  }
  [[nodiscard]] const std::vector<std::string>& tracks() const noexcept {
    return tracks_;
  }

  /// Point-in-time copy for export: events in emission order (ring
  /// unwrapped), track names, and the drop count.
  struct Snapshot {
    std::string label;
    std::vector<std::string> tracks;
    std::uint64_t dropped = 0;
    std::vector<Event> events;

    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };
  [[nodiscard]] Snapshot snapshot(std::string label = {}) const;

 private:
  sim::Simulator& sim_;
  std::vector<Event> ring_;  ///< reserve(capacity) up front
  std::string actor_prefix_;
  std::vector<std::string> tracks_;
  std::uint64_t total_ = 0;
  std::uint32_t last_op_ = 0;
};

/// A {log, track, current-op} triple held by value in each actor. attach()
/// is idempotent-safe to skip: with a null log every emit() is one branch.
struct Recorder {
  EventLog* log = nullptr;
  std::uint16_t track = 0;
  std::uint32_t cur_op = 0;
  /// Client recorders set this: op attribution reads the simulator's op
  /// context (maintained across suspensions by every awaiter) instead of
  /// the recorder-local cur_op, so a client with several async ops in
  /// flight attributes each verb/RPC/retry event to the op whose coroutine
  /// is actually running — not to whichever op began most recently.
  bool op_scoped = false;

  void attach(EventLog* l, std::string name) {
    if (l == nullptr) return;
    log = l;
    track = l->register_track(std::move(name));
  }
  [[nodiscard]] bool enabled() const noexcept { return log != nullptr; }

  /// The op id emissions are attributed to right now.
  [[nodiscard]] std::uint32_t current_op() const noexcept {
    if (log == nullptr) return 0;
    return op_scoped ? log->context_op() : cur_op;
  }

  void emit(EventType type, std::uint8_t aux = 0, std::uint64_t a = 0,
            std::uint64_t b = 0) const {
    if (log != nullptr) log->emit(track, current_op(), type, aux, a, b);
  }
  /// Start a new causally-tracked op; subsequent emissions (including the
  /// ones borrowed through QueuePair/Connection) carry its id.
  void begin_op(OpKind kind) {
    if (log == nullptr) return;
    cur_op = log->next_op_id();
    if (op_scoped) log->set_context_op(cur_op);
    log->emit(track, cur_op, EventType::kOpBegin,
              static_cast<std::uint8_t>(kind));
  }
  void end_op(OpKind kind, std::uint64_t status_code) {
    if (log == nullptr) return;
    log->emit(track, current_op(), EventType::kOpEnd,
              static_cast<std::uint8_t>(kind), status_code);
    cur_op = 0;
    if (op_scoped) log->set_context_op(0);
  }

  /// Batched submissions manage op ids explicitly: begin_op_id() allocates
  /// and announces an op WITHOUT re-pointing current attribution — the
  /// caller chooses which member op owns the batch's shared verbs via
  /// set_current(), and closes each member with end_op_id().
  [[nodiscard]] std::uint32_t begin_op_id(OpKind kind) {
    if (log == nullptr) return 0;
    const std::uint32_t id = log->next_op_id();
    log->emit(track, id, EventType::kOpBegin,
              static_cast<std::uint8_t>(kind));
    return id;
  }
  void set_current(std::uint32_t op) {
    cur_op = op;
    if (op_scoped && log != nullptr) log->set_context_op(op);
  }
  void end_op_id(std::uint32_t op, OpKind kind, std::uint64_t status_code) {
    if (log == nullptr) return;
    log->emit(track, op, EventType::kOpEnd,
              static_cast<std::uint8_t>(kind), status_code);
  }
};

}  // namespace efac::trace
