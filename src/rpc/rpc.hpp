// SEND-based RPC, as every compared system in the paper uses for its
// control path ("SEND-based RPC": client SEND carries the request, server
// SEND carries the response).
//
// Requests ride ordinary two-sided SENDs on the client's QueuePair and land
// in the server node's receive queue as serialized messages:
//
//     [u16 opcode][u64 call_id][u32 len][args bytes]
//
// Server workers pop InboundMessages, parse them with parse_request(), do
// their (virtual-CPU-charged) work, and answer through a Replier, which
// models the reverse path: server post overhead + one-way + payload wire
// time + completion, then fulfils the client's pending-call slot.
//
// The Directory maps qp_id -> client Connection so a Replier constructed
// from a parsed request can find its way back; it stands in for the
// reverse half of the real RC connection.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "rdma/fabric.hpp"
#include "rdma/node.hpp"
#include "rdma/queue_pair.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace efac::rpc {

class Connection;

/// qp_id -> client connection registry (one per simulated cluster).
class Directory {
 public:
  void add(std::uint64_t qp_id, Connection* conn) {
    EFAC_CHECK(conns_.emplace(qp_id, conn).second);
  }
  void remove(std::uint64_t qp_id) { conns_.erase(qp_id); }
  [[nodiscard]] Connection* find(std::uint64_t qp_id) const {
    const auto it = conns_.find(qp_id);
    return it == conns_.end() ? nullptr : it->second;
  }

 private:
  std::unordered_map<std::uint64_t, Connection*> conns_;
};

/// A parsed inbound RPC request.
struct ParsedRequest {
  std::uint16_t opcode = 0;
  std::uint64_t call_id = 0;
  std::uint64_t src_qp = 0;
  Bytes args;
  SimTime arrived_at = 0;
};

/// Parse a SEND payload produced by Connection::call().
[[nodiscard]] ParsedRequest parse_request(const rdma::InboundMessage& msg);

/// Server-side handle for answering one request.
class Replier {
 public:
  Replier(Directory& directory, std::uint64_t qp_id, std::uint64_t call_id)
      : directory_(&directory), qp_id_(qp_id), call_id_(call_id) {}

  /// Send the response payload back to the caller. Models the reverse
  /// network path; the caller's CPU send-post cost must be charged by the
  /// server worker before invoking this.
  void reply(Bytes payload) const;

 private:
  Directory* directory_;
  std::uint64_t qp_id_;
  std::uint64_t call_id_;
};

/// Client-side RPC connection; also exposes the underlying QueuePair for
/// one-sided verbs on the same "connection" (client-active data path).
class Connection {
 public:
  /// `registry` is forwarded to the underlying QueuePair so its "qp.*"
  /// counters land in the owning client's registry (nullptr → private).
  /// `recorder` (optional, borrowed) is likewise forwarded to the QP and
  /// additionally tags each outbound request with a kRpcIssue event, so
  /// the exporter can draw a flow arrow to the server's kRpcDeliver.
  Connection(sim::Simulator& sim, rdma::Fabric& fabric, rdma::Node& server,
             Directory& directory, std::uint64_t qp_id,
             metrics::MetricsRegistry* registry = nullptr,
             const trace::Recorder* recorder = nullptr);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Issue a request and await the response payload. Never times out: if
  /// the request or response is lost (only possible under an armed fault
  /// injector) the caller suspends forever — use call_timeout under fault
  /// plans.
  sim::Task<Bytes> call(std::uint16_t opcode, Bytes args);

  /// Issue a request and await the response, giving up with
  /// StatusCode::kTimeout after `timeout_ns` (0 = wait forever, in which
  /// case this is equivalent to call()). A late response for a timed-out
  /// call is dropped, like a stale completion on a real RC connection.
  sim::Task<Expected<Bytes>> call_timeout(std::uint16_t opcode, Bytes args,
                                          SimDuration timeout_ns);

  /// An RPC whose request is on the wire while the caller overlaps other
  /// verbs — the hedge behind the client's speculative GET. Obtain one
  /// from call_begin(), then either await the response (call_finish) or
  /// walk away (call_abandon: the late response is dropped on arrival,
  /// like any reply to a forgotten call).
  struct PendingCall {
    std::uint64_t call_id = 0;
    std::unique_ptr<sim::OneShot<Expected<Bytes>>> slot;
  };

  /// Post the request (fire-and-forget SEND) and return the pending call.
  /// Every begun call must reach call_finish or call_abandon on EVERY
  /// path, or its response slot leaks — [[nodiscard]] catches the dropped
  /// handle and efac-check rule EFAC004 proves the path balance
  /// (docs/STATIC_ANALYSIS.md).
  [[nodiscard]] PendingCall call_begin(std::uint16_t opcode, Bytes args);
  /// Await a pending call's response with call_timeout() semantics.
  sim::Task<Expected<Bytes>> call_finish(PendingCall call,
                                         SimDuration timeout_ns);
  /// Forget a pending call; its response (if any) is dropped on arrival.
  void call_abandon(PendingCall call);

  [[nodiscard]] rdma::QueuePair& qp() noexcept { return qp_; }
  [[nodiscard]] std::uint64_t qp_id() const noexcept { return qp_.id(); }

  /// Invoked (indirectly, by Replier) when a response has been computed at
  /// the server; models reverse-path latency then fulfils the pending call.
  void deliver_reply(std::uint64_t call_id, Bytes payload);

  /// Number of RPC round trips completed on this connection.
  [[nodiscard]] std::uint64_t calls_completed() const noexcept {
    return calls_completed_;
  }

 private:
  sim::Simulator& sim_;
  rdma::Fabric& fabric_;
  Directory& directory_;
  rdma::QueuePair qp_;
  const trace::Recorder* rec_;
  std::uint64_t next_call_id_ = 1;
  std::uint64_t calls_completed_ = 0;
  std::unordered_map<std::uint64_t, sim::OneShot<Expected<Bytes>>*> pending_;
};

}  // namespace efac::rpc
