#include "rpc/rpc.hpp"

namespace efac::rpc {

ParsedRequest parse_request(const rdma::InboundMessage& msg) {
  ByteReader reader{msg.payload};
  ParsedRequest out;
  out.opcode = reader.get_u16();
  out.call_id = reader.get_u64();
  BytesView args = reader.get_blob();
  out.args.assign(args.begin(), args.end());
  out.src_qp = msg.src_qp;
  out.arrived_at = msg.arrived_at;
  return out;
}

void Replier::reply(Bytes payload) const {
  Connection* conn = directory_->find(qp_id_);
  // The client may have torn down (e.g. after an injected crash); dropping
  // the response mirrors what a dead RC connection would do.
  if (conn == nullptr) return;
  conn->deliver_reply(call_id_, std::move(payload));
}

Connection::Connection(sim::Simulator& sim, rdma::Fabric& fabric,
                       rdma::Node& server, Directory& directory,
                       std::uint64_t qp_id,
                       metrics::MetricsRegistry* registry,
                       const trace::Recorder* recorder)
    : sim_(sim),
      fabric_(fabric),
      directory_(directory),
      qp_(sim, fabric, server, qp_id, registry, recorder),
      rec_(recorder) {
  directory_.add(qp_id, this);
}

Connection::~Connection() { directory_.remove(qp_.id()); }

sim::Task<Bytes> Connection::call(std::uint16_t opcode, Bytes args) {
  Expected<Bytes> response =
      co_await call_timeout(opcode, std::move(args), /*timeout_ns=*/0);
  // Without a timeout the slot is only ever fulfilled with a payload.
  EFAC_CHECK(response.has_value());
  co_return std::move(response).take();
}

sim::Task<Expected<Bytes>> Connection::call_timeout(std::uint16_t opcode,
                                                    Bytes args,
                                                    SimDuration timeout_ns) {
  const std::uint64_t call_id = next_call_id_++;
  ByteWriter writer{args.size() + 16};
  writer.put_u16(opcode);
  writer.put_u64(call_id);
  writer.put_blob(args);
  if (rec_ != nullptr) {
    rec_->emit(trace::EventType::kRpcIssue,
               static_cast<std::uint8_t>(opcode), call_id, qp_.id());
  }

  sim::OneShot<Expected<Bytes>> slot{sim_};
  pending_.emplace(call_id, &slot);
  if (timeout_ns > 0) {
    sim_.call_after(timeout_ns, [this, call_id] {
      const auto it = pending_.find(call_id);
      // Already answered (possibly in this very instant) or already torn
      // down: the timer is stale.
      if (it == pending_.end() || it->second->ready()) return;
      it->second->set(Status{StatusCode::kTimeout, "rpc timeout"});
    });
  }
  co_await qp_.send(std::move(writer).take());
  Expected<Bytes> response = co_await slot.wait();
  pending_.erase(call_id);
  if (response.has_value()) ++calls_completed_;
  co_return response;
}

Connection::PendingCall Connection::call_begin(std::uint16_t opcode,
                                               Bytes args) {
  const std::uint64_t call_id = next_call_id_++;
  ByteWriter writer{args.size() + 16};
  writer.put_u16(opcode);
  writer.put_u64(call_id);
  writer.put_blob(args);
  if (rec_ != nullptr) {
    rec_->emit(trace::EventType::kRpcIssue,
               static_cast<std::uint8_t>(opcode), call_id, qp_.id());
  }
  PendingCall call;
  call.call_id = call_id;
  call.slot = std::make_unique<sim::OneShot<Expected<Bytes>>>(sim_);
  pending_.emplace(call_id, call.slot.get());
  // Fire-and-forget: the request departs through the QP FIFO like any
  // send(), but the caller keeps running — that head start is the point.
  qp_.post_send(std::move(writer).take());
  return call;
}

sim::Task<Expected<Bytes>> Connection::call_finish(PendingCall call,
                                                   SimDuration timeout_ns) {
  const std::uint64_t call_id = call.call_id;
  if (timeout_ns > 0 && !call.slot->ready()) {
    sim_.call_after(timeout_ns, [this, call_id] {
      const auto it = pending_.find(call_id);
      if (it == pending_.end() || it->second->ready()) return;
      it->second->set(Status{StatusCode::kTimeout, "rpc timeout"});
    });
  }
  Expected<Bytes> response = co_await call.slot->wait();
  pending_.erase(call_id);
  if (response.has_value()) ++calls_completed_;
  co_return response;
}

void Connection::call_abandon(PendingCall call) {
  // Unregistering makes deliver_reply drop the response on arrival; the
  // slot dies with `call`.
  pending_.erase(call.call_id);
}

void Connection::deliver_reply(std::uint64_t call_id, Bytes payload) {
  SimDuration fault_extra = 0;
  if (fault::Injector* inj = fabric_.injector();
      inj != nullptr && inj->enabled()) {
    if (inj->fire(fault::Site::kRespDrop)) return;
    if (inj->fire(fault::Site::kRespDelay)) {
      fault_extra = inj->spec(fault::Site::kRespDelay).delay_ns;
    }
  }
  const rdma::FabricConfig& cfg = fabric_.config();
  // Reverse path: one-way + response serialization + requester completion.
  // The server's CPU cost of posting the SEND is charged by the server
  // worker (it is part of the handler's service time), not here.
  const SimDuration latency = fabric_.one_way() +
                              cfg.wire_cost(payload.size()) +
                              cfg.completion_ns + fault_extra;
  sim_.call_after(latency, [this, call_id, p = std::move(payload)]() mutable {
    const auto it = pending_.find(call_id);
    // Late replies for calls that no longer exist are dropped (client gave
    // up / crashed); mirrors a stale completion. A call already fulfilled
    // in this instant (duplicate reply, or a racing timeout) is left alone.
    if (it == pending_.end() || it->second->ready()) return;
    it->second->set(Expected<Bytes>{std::move(p)});
  });
}

}  // namespace efac::rpc
