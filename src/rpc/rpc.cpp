#include "rpc/rpc.hpp"

namespace efac::rpc {

ParsedRequest parse_request(const rdma::InboundMessage& msg) {
  ByteReader reader{msg.payload};
  ParsedRequest out;
  out.opcode = reader.get_u16();
  out.call_id = reader.get_u64();
  BytesView args = reader.get_blob();
  out.args.assign(args.begin(), args.end());
  out.src_qp = msg.src_qp;
  out.arrived_at = msg.arrived_at;
  return out;
}

void Replier::reply(Bytes payload) const {
  Connection* conn = directory_->find(qp_id_);
  // The client may have torn down (e.g. after an injected crash); dropping
  // the response mirrors what a dead RC connection would do.
  if (conn == nullptr) return;
  conn->deliver_reply(call_id_, std::move(payload));
}

Connection::Connection(sim::Simulator& sim, rdma::Fabric& fabric,
                       rdma::Node& server, Directory& directory,
                       std::uint64_t qp_id,
                       metrics::MetricsRegistry* registry)
    : sim_(sim),
      fabric_(fabric),
      directory_(directory),
      qp_(sim, fabric, server, qp_id, registry) {
  directory_.add(qp_id, this);
}

Connection::~Connection() { directory_.remove(qp_.id()); }

sim::Task<Bytes> Connection::call(std::uint16_t opcode, Bytes args) {
  const std::uint64_t call_id = next_call_id_++;
  ByteWriter writer{args.size() + 16};
  writer.put_u16(opcode);
  writer.put_u64(call_id);
  writer.put_blob(args);

  sim::OneShot<Bytes> slot{sim_};
  pending_.emplace(call_id, &slot);
  co_await qp_.send(std::move(writer).take());
  Bytes response = co_await slot.wait();
  pending_.erase(call_id);
  ++calls_completed_;
  co_return response;
}

void Connection::deliver_reply(std::uint64_t call_id, Bytes payload) {
  const rdma::FabricConfig& cfg = fabric_.config();
  // Reverse path: one-way + response serialization + requester completion.
  // The server's CPU cost of posting the SEND is charged by the server
  // worker (it is part of the handler's service time), not here.
  const SimDuration latency = fabric_.one_way() +
                              cfg.wire_cost(payload.size()) +
                              cfg.completion_ns;
  sim_.call_after(latency, [this, call_id, p = std::move(payload)]() mutable {
    const auto it = pending_.find(call_id);
    // Late replies for calls that no longer exist are dropped (client gave
    // up / crashed); mirrors a stale completion.
    if (it == pending_.end()) return;
    it->second->set(std::move(p));
  });
}

}  // namespace efac::rpc
