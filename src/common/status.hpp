// Lightweight Status / Expected types for recoverable errors.
//
// The library reserves exceptions for programmer errors (EFAC_CHECK);
// operations that can legitimately fail at runtime (key not found, CRC
// mismatch, memory-region bounds violation, ...) return Status or
// Expected<T>. GCC 12 in C++20 mode has no std::expected, so we carry a
// minimal, allocation-free equivalent.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/assert.hpp"

namespace efac {

/// Error categories used across the library.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kNotFound,        ///< key / object / version absent
  kCorrupt,         ///< CRC mismatch or torn data detected
  kOutOfSpace,      ///< log pool or hash table full
  kInvalidArgument, ///< malformed request
  kPermission,      ///< rkey / MR access violation
  kUnavailable,     ///< transient: retry may succeed (e.g. during cleaning)
  kTimeout,         ///< object never completed within the timeout window
  kCrashed,         ///< operation aborted by injected crash
  kUnimplemented,   ///< operation not supported by this system
  kInternal,        ///< invariant violation surfaced as an error
};

/// Human-readable name of a StatusCode.
constexpr const char* to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kCorrupt: return "CORRUPT";
    case StatusCode::kOutOfSpace: return "OUT_OF_SPACE";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kPermission: return "PERMISSION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kCrashed: return "CRASHED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

/// A status code plus optional message. Cheap to copy when OK.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;  // OK
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return Status{}; }

  [[nodiscard]] bool is_ok() const noexcept {
    return code_ == StatusCode::kOk;
  }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }

  [[nodiscard]] std::string to_string() const {
    std::string s = efac::to_string(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or a non-OK Status.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Status status) : data_(std::move(status)) {  // NOLINT
    EFAC_CHECK_MSG(!std::get<Status>(data_).is_ok(),
                   "Expected<T> constructed from OK status without a value");
  }
  Expected(StatusCode code) : Expected(Status{code}) {}  // NOLINT

  [[nodiscard]] bool has_value() const noexcept {
    return std::holds_alternative<T>(data_);
  }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] const T& value() const& {
    EFAC_CHECK_MSG(has_value(), "value() on error Expected: " << status().to_string());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    EFAC_CHECK_MSG(has_value(), "value() on error Expected: " << status().to_string());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& take() && {
    EFAC_CHECK_MSG(has_value(), "take() on error Expected: " << status().to_string());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] Status status() const {
    if (has_value()) return Status::ok();
    return std::get<Status>(data_);
  }
  [[nodiscard]] StatusCode code() const noexcept {
    return has_value() ? StatusCode::kOk : std::get<Status>(data_).code();
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace efac
