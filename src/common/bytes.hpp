// Byte-buffer helpers and a tiny little-endian serialization layer.
//
// RPC requests/responses and on-media object headers are packed with
// ByteWriter / ByteReader so that layouts are explicit and independent of
// host struct padding.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"

namespace efac {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;
using MutableBytesView = std::span<std::uint8_t>;

/// Make an owned byte vector from a string-like payload.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// View a byte range as a string (for tests / examples).
inline std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Append-only little-endian serializer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buffer_.reserve(reserve); }

  void put_u8(std::uint8_t v) { buffer_.push_back(v); }
  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }

  void put_bytes(BytesView data) {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }

  /// Length-prefixed (u32) blob.
  void put_blob(BytesView data) {
    put_u32(static_cast<std::uint32_t>(data.size()));
    put_bytes(data);
  }

  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] Bytes take() && { return std::move(buffer_); }
  [[nodiscard]] const Bytes& bytes() const noexcept { return buffer_; }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes buffer_;
};

/// Sequential little-endian deserializer over a borrowed view.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::uint8_t get_u8() { return get_le<std::uint8_t>(); }
  std::uint16_t get_u16() { return get_le<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_le<std::uint64_t>(); }

  BytesView get_bytes(std::size_t n) {
    EFAC_CHECK_MSG(remaining() >= n, "ByteReader underflow");
    BytesView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Length-prefixed (u32) blob.
  BytesView get_blob() {
    const std::uint32_t n = get_u32();
    return get_bytes(n);
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  template <typename T>
  T get_le() {
    EFAC_CHECK_MSG(remaining() >= sizeof(T), "ByteReader underflow");
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  BytesView data_;
  std::size_t pos_ = 0;
};

/// Store a u64 little-endian at a raw location (8-byte atomic NVM unit).
inline void store_u64_le(std::uint8_t* dst, std::uint64_t v) noexcept {
  for (std::size_t i = 0; i < 8; ++i) {
    dst[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

/// Load a little-endian u64 from a raw location.
inline std::uint64_t load_u64_le(const std::uint8_t* src) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(src[i]) << (8 * i);
  }
  return v;
}

}  // namespace efac
