// Deterministic pseudo-random number generation.
//
// Everything in the simulator that needs randomness (latency jitter, YCSB
// key draws, crash instants) goes through these generators so that a run is
// exactly reproducible from its seed. xoshiro256++ is used as the workhorse
// generator; splitmix64 seeds it and doubles as a cheap stateless hash.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace efac {

/// splitmix64 step: used both as a seed expander and as a 64-bit mixer/hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a single value (Stafford variant 13).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256++ PRNG (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free mapping is fine here: the tiny
    // modulo bias of a plain 128-bit multiply is irrelevant for simulation.
    EFAC_CHECK(bound > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) noexcept {
    EFAC_CHECK(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p of true.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Standard normal via Box–Muller (one value per call; simple > fast here).
  double next_gaussian() noexcept {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Lognormal draw with given median and sigma (of the underlying normal).
  /// Used for network-latency jitter: long-tailed, always positive.
  double next_lognormal(double median, double sigma) noexcept {
    return median * std::exp(sigma * next_gaussian());
  }

  /// Derive an independent child generator (for per-client streams).
  Rng fork() noexcept { return Rng(operator()()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace efac
