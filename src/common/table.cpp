#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>

namespace efac {

void TextTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' &&
        c != '-' && c != '+' && c != 'e' && c != '%' && c != 'x') {
      return false;
    }
  }
  return true;
}

}  // namespace

void TextTable::print(std::ostream& os) const {
  std::vector<std::vector<std::string>> all;
  if (!header_.empty()) all.push_back(header_);
  for (const auto& r : rows_) all.push_back(r);

  std::size_t columns = 0;
  for (const auto& r : all) columns = std::max(columns, r.size());
  std::vector<std::size_t> widths(columns, 0);
  for (const auto& r : all) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }

  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string cell = c < r.size() ? r[c] : "";
      const bool right = c > 0 && looks_numeric(cell);
      os << (c == 0 ? "" : "  ");
      if (right) {
        os << std::string(widths[c] - cell.size(), ' ') << cell;
      } else {
        os << cell << std::string(widths[c] - cell.size(), ' ');
      }
    }
    os << '\n';
  };

  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < columns; ++c) total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) print_row(r);
}

}  // namespace efac
