// Fundamental type aliases shared across the library.
#pragma once

#include <cstddef>
#include <cstdint>

namespace efac {

/// Virtual simulation time, in nanoseconds since simulation start.
using SimTime = std::uint64_t;

/// A span of virtual time, in nanoseconds.
using SimDuration = std::uint64_t;

/// Offset of a byte within an NVM arena / registered memory region.
using MemOffset = std::uint64_t;

/// Sentinel for "no offset" (null pointer within an arena).
inline constexpr MemOffset kNullOffset = ~MemOffset{0};

/// Empty success payload for Expected<Unit> results.
struct Unit {};

/// Convenience literals for virtual durations.
namespace timeconst {
inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1'000;
inline constexpr SimDuration kMillisecond = 1'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000;
}  // namespace timeconst

/// Size literals.
namespace sizeconst {
inline constexpr std::size_t kKiB = 1024;
inline constexpr std::size_t kMiB = 1024 * kKiB;
inline constexpr std::size_t kCacheLine = 64;
}  // namespace sizeconst

}  // namespace efac
