#include "common/histogram.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"

namespace efac {

Histogram::Histogram() {
  // 64-bit values span at most 64 octaves; linear region + 64 octaves of
  // sub-buckets comfortably fits in this fixed allocation.
  buckets_.assign(kLinearLimit + 64 * kSubBuckets, 0);
}

std::uint32_t Histogram::bucket_index(std::uint64_t value) noexcept {
  if (value < kLinearLimit) return static_cast<std::uint32_t>(value);
  // Highest set bit defines the octave; next kSubBucketBits bits pick the
  // sub-bucket within it.
  const int msb = 63 - std::countl_zero(value);
  const auto octave = static_cast<std::uint32_t>(msb);
  const auto sub = static_cast<std::uint32_t>(
      (value >> (octave - kSubBucketBits)) & (kSubBuckets - 1));
  // Octave of kLinearLimit's MSB starts right after the linear region.
  const std::uint32_t base_octave = kSubBucketBits + 1;  // MSB of kLinearLimit
  return kLinearLimit + (octave - base_octave) * kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_representative(std::uint32_t index) noexcept {
  if (index < kLinearLimit) return index;
  const std::uint32_t base_octave = kSubBucketBits + 1;
  const std::uint32_t rel = index - kLinearLimit;
  const std::uint32_t octave = base_octave + rel / kSubBuckets;
  const std::uint64_t sub = rel % kSubBuckets;
  const std::uint64_t low =
      (std::uint64_t{1} << octave) | (sub << (octave - kSubBucketBits));
  const std::uint64_t width = std::uint64_t{1} << (octave - kSubBucketBits);
  return low + width / 2;  // midpoint of the bucket
}

void Histogram::record(std::uint64_t value) noexcept {
  const std::uint32_t idx = bucket_index(value);
  if (idx < buckets_.size()) {
    ++buckets_[idx];
  } else {
    ++buckets_.back();  // clamp absurd values rather than UB
  }
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::mean() const noexcept {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::min() const noexcept { return count_ ? min_ : 0; }
std::uint64_t Histogram::max() const noexcept { return count_ ? max_ : 0; }

std::uint64_t Histogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based, ceil convention.
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > rank || (seen == rank && rank == count_)) {
      // Clamp the representative into the observed range so tiny histograms
      // report exact-ish values.
      return std::clamp(bucket_representative(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

}  // namespace efac
