// Minimal recursive-descent JSON reader shared by the schema validators
// (metrics/json.cpp for efac.bench.v1, trace/chrome.cpp for the Chrome
// trace-event export). Just enough to type-check documents we write
// ourselves: strings, numbers (classified integral vs not so validators
// can insist counters are whole numbers), and skipping unknown values.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <string>
#include <string_view>

namespace efac::json {

struct Parser {
  std::string_view doc;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool failed() const noexcept { return !error.empty(); }
  void fail(std::string message) {
    if (error.empty()) {
      error = std::move(message);
      error += " at byte ";
      error += std::to_string(pos);
    }
  }

  void skip_ws() {
    while (pos < doc.size() &&
           std::isspace(static_cast<unsigned char>(doc[pos])) != 0) {
      ++pos;
    }
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos < doc.size() && doc[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool expect(char c) {
    if (consume(c)) return true;
    fail(std::string{"expected '"} + c + "'");
    return false;
  }

  /// Parse a JSON string; returns its unescaped value.
  std::string parse_string() {
    std::string out;
    if (!expect('"')) return out;
    while (pos < doc.size()) {
      const char c = doc[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= doc.size()) break;
        const char esc = doc[pos++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (doc.size() - pos < 4) {
              fail("truncated \\u escape");
              return out;
            }
            // Escaped code points only appear for control characters in
            // our own output; keep the replacement cheap and lossless
            // enough for validation purposes.
            out += '?';
            pos += 4;
            break;
          default:
            fail("bad escape");
            return out;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return out;
  }

  struct Number {
    double value = 0.0;
    bool integral = false;
  };

  Number parse_number() {
    skip_ws();
    const std::size_t begin = pos;
    if (pos < doc.size() && (doc[pos] == '-' || doc[pos] == '+')) ++pos;
    bool fractional = false;
    while (pos < doc.size()) {
      const char c = doc[pos];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        fractional = fractional || c == '.' || c == 'e' || c == 'E';
        ++pos;
      } else {
        break;
      }
    }
    if (pos == begin) {
      fail("expected number");
      return {};
    }
    Number out;
    out.value = std::strtod(std::string{doc.substr(begin, pos - begin)}.c_str(),
                            nullptr);
    out.integral = !fractional && std::isfinite(out.value);
    return out;
  }

  /// Skip any JSON value (used for forward-compatible unknown keys).
  void skip_value() {
    skip_ws();
    if (pos >= doc.size()) {
      fail("unexpected end of document");
      return;
    }
    const char c = doc[pos];
    if (c == '"') {
      parse_string();
    } else if (c == '{') {
      ++pos;
      if (consume('}')) return;
      do {
        parse_string();
        if (!expect(':')) return;
        skip_value();
        if (failed()) return;
      } while (consume(','));
      expect('}');
    } else if (c == '[') {
      ++pos;
      if (consume(']')) return;
      do {
        skip_value();
        if (failed()) return;
      } while (consume(','));
      expect(']');
    } else if (doc.compare(pos, 4, "true") == 0) {
      pos += 4;
    } else if (doc.compare(pos, 5, "false") == 0) {
      pos += 5;
    } else if (doc.compare(pos, 4, "null") == 0) {
      pos += 4;
    } else {
      parse_number();
    }
  }
};

}  // namespace efac::json
