// Plain-text table printer for benchmark summaries.
//
// Every bench binary ends by printing a paper-style table (rows = systems,
// columns = value sizes / client counts) through this helper so outputs are
// uniform and easy to diff against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace efac {

class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// Set the header row (first cell is usually the row-label column name).
  void set_header(std::vector<std::string> cells);

  /// Append a data row. Rows may be ragged; short rows are padded.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment. Numeric-looking cells right-align.
  void print(std::ostream& os) const;

  /// Format a double with the given precision (helper for cells).
  static std::string num(double v, int precision = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace efac
