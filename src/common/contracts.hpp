// Static persistence-contract annotations, discharged by efac-check.
//
// The paper's correctness argument is an ORDERING contract: an ack (or
// locate reply) may claim durability only after the object's persist +
// fence completed — and the read side must revalidate CRC/metadata before
// trusting racily-read bytes. PR 4's dynamic sanitizer checks the
// schedules a workload happens to execute; the markers below make the same
// obligations visible to `scripts/efac_check.py`, which proves them on ALL
// control-flow paths (fault-injected retry tails, hedge/abandon paths,
// branches no workload reaches). docs/STATIC_ANALYSIS.md has the taxonomy
// and checker rules.
//
// Every marker expands to a call of an empty constexpr inline function:
// zero code at any optimization level, no behavioural difference, and the
// determinism suite stays bit-identical. The checker never executes
// anything — it recognises the macro names in source (lexical engine) or
// the calls in the AST (libclang engine).
//
// Statement markers (placed on the path they describe):
//
//   EFAC_PERSISTS(tag)   The bytes this path's eventual claim covers are
//                        persisted HERE: flush issued and the fence (or an
//                        ordering equivalent, e.g. an awaited RDMA COMMIT
//                        completion) has completed on this path.
//   EFAC_NO_CLAIM(tag)   This path's eventual reply/return carries NO
//                        durability claim (error status, torn object,
//                        timeout). Discharges rule EFAC001/EFAC002 for
//                        paths that answer without promising durability.
//   EFAC_ACK_SITE(tag)   A durability-claiming ack/reply is built or sent
//                        here. efac-check requires persist evidence
//                        (EFAC_PERSISTS, an EFAC_FN_ESTABLISHES_DURABLE
//                        call, or a positive EFAC_FN_OBSERVES_DURABLE
//                        test) on EVERY path from function entry [EFAC001].
//   EFAC_WIRE_TAIL(tag)  An OPTIONAL wire-format tail is encoded/decoded
//                        here. Must be feature-gated (inside a conditional
//                        or exhaustion-guarded) and append-only: no fixed-
//                        layout field may be written after it [EFAC003].
//
// Function markers (first statement of the definition's body):
//
//   EFAC_FN_ESTABLISHES_DURABLE()  Every return path of this function
//                        either carries persist evidence or is explicitly
//                        EFAC_NO_CLAIM — so a call to it IS persist
//                        evidence at the call site. efac-check verifies
//                        the promise against the body [EFAC002]. When the
//                        call appears as an `if` condition, the evidence
//                        applies to the branch taken on success (the
//                        then-branch, or the else-branch under `!`).
//   EFAC_FN_REQUIRES_DURABLE()     Durability evidence must already hold
//                        wherever this function is called; every call
//                        site is checked like an ack site [EFAC001].
//   EFAC_FN_OBSERVES_DURABLE()     This predicate returns true iff the
//                        object is durable (the durability flag's
//                        promise). A positive test of it in an `if`
//                        condition is persist evidence for that branch.
//
// A finding can be waived with `// efac-waive: EFAC00N <reason>` on the
// statement's line or the line above; the reason is mandatory.
#pragma once

namespace efac::contracts {

/// Annotation sink: all contract markers compile down to a call of this
/// empty function, which every compiler folds away entirely.
inline constexpr void annotation_sink(const char* /*tag*/) noexcept {}

}  // namespace efac::contracts

#define EFAC_PERSISTS(tag) ::efac::contracts::annotation_sink("persists:" tag)
#define EFAC_NO_CLAIM(tag) ::efac::contracts::annotation_sink("no_claim:" tag)
#define EFAC_ACK_SITE(tag) ::efac::contracts::annotation_sink("ack_site:" tag)
#define EFAC_WIRE_TAIL(tag) \
  ::efac::contracts::annotation_sink("wire_tail:" tag)

#define EFAC_FN_ESTABLISHES_DURABLE() \
  ::efac::contracts::annotation_sink("fn:establishes_durable")
#define EFAC_FN_REQUIRES_DURABLE() \
  ::efac::contracts::annotation_sink("fn:requires_durable")
#define EFAC_FN_OBSERVES_DURABLE() \
  ::efac::contracts::annotation_sink("fn:observes_durable")
