// Log-bucketed latency histogram with percentile queries.
//
// HDR-histogram style: values are bucketed with bounded relative error
// (~1/32 ≈ 3 %), which is plenty for reporting medians and p99s of
// virtual-time latencies while keeping record() O(1) and allocation-free
// after construction.
#pragma once

#include <cstdint>
#include <vector>

namespace efac {

class Histogram {
 public:
  Histogram();

  /// Record one sample (e.g. an op latency in ns).
  void record(std::uint64_t value) noexcept;

  /// Merge another histogram into this one.
  void merge(const Histogram& other) noexcept;

  /// Number of recorded samples.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// Sum of all recorded samples (exact).
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }

  /// Arithmetic mean; 0 if empty.
  [[nodiscard]] double mean() const noexcept;

  /// Exact minimum / maximum of recorded samples; 0 if empty.
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept;

  /// Value at quantile q in [0,1] (bucket upper midpoint); 0 if empty.
  /// percentile(0.5) is the median, percentile(0.99) the p99.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;

  /// Remove all samples.
  void reset() noexcept;

 private:
  // Bucket layout: values < kLinearLimit are exact (one bucket per value);
  // beyond that, each power-of-two range is split into kSubBuckets
  // logarithmic sub-buckets.
  static constexpr std::uint32_t kSubBucketBits = 5;               // 32 per octave
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBucketBits;
  static constexpr std::uint64_t kLinearLimit = kSubBuckets * 2;   // 64

  static std::uint32_t bucket_index(std::uint64_t value) noexcept;
  static std::uint64_t bucket_representative(std::uint32_t index) noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace efac
