// Invariant-checking macros.
//
// EFAC_CHECK fires in every build type: simulator correctness depends on
// these invariants, and the cost of the checks is negligible next to the
// modelled (virtual-time) work. Violations indicate programmer error and
// throw `efac::CheckFailure` so that tests can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace efac {

/// Thrown when an EFAC_CHECK invariant is violated.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "EFAC_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace detail
}  // namespace efac

#define EFAC_CHECK(expr)                                               \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::efac::detail::check_failed(#expr, __FILE__, __LINE__, "");     \
    }                                                                  \
  } while (false)

#define EFAC_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream efac_check_os_;                               \
      efac_check_os_ << msg;                                           \
      ::efac::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                   efac_check_os_.str());              \
    }                                                                  \
  } while (false)

#define EFAC_UNREACHABLE(msg)                                          \
  ::efac::detail::check_failed("unreachable", __FILE__, __LINE__, msg)
