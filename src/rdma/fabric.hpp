// Network fabric model: latency/bandwidth constants and jitter.
//
// The fabric does not move bytes itself — QueuePair computes arrival and
// completion instants analytically from these constants, and the NVM arena
// materializes DMA payloads lazily. Constants are calibrated against the
// paper's testbed (ConnectX-5, 100 Gb/s InfiniBand): a small one-sided READ
// lands around 1.6–1.9 µs, a SEND-based RPC around 3.5 µs.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fault/fault.hpp"
#include "nvm/arena.hpp"

namespace efac::rdma {

struct FabricConfig {
  /// Client CPU cost to build a WQE and ring the doorbell.
  SimDuration post_overhead_ns = 200;
  /// Client CPU cost per ADDITIONAL WQE in a doorbell-coalesced burst:
  /// the WQEs are linked and the doorbell rung once, so entries after the
  /// head cost only the WQE build, not the MMIO ring.
  SimDuration doorbell_entry_ns = 40;
  /// One-way propagation (host NIC → switch → target NIC), small message.
  SimDuration one_way_ns = 700;
  /// Serialization cost per payload byte (~100 Gb/s ≈ 0.08 ns/B).
  double wire_byte_ns = 0.082;
  /// Target-NIC processing per request (address translation, PCIe issue).
  SimDuration nic_process_ns = 150;
  /// CQE generation plus requester poll cost.
  SimDuration completion_ns = 180;
  /// Lognormal sigma applied to each one-way leg (tail latency).
  double jitter_sigma = 0.06;
  /// How inbound WRITE payloads materialize in target memory. kSequential
  /// models PCIe-ordered placement; kShuffled is the adversarial model
  /// (NICs may reorder within a message).
  nvm::PlacementOrder placement = nvm::PlacementOrder::kSequential;

  [[nodiscard]] SimDuration wire_cost(std::size_t bytes) const noexcept {
    return static_cast<SimDuration>(
        std::llround(wire_byte_ns * static_cast<double>(bytes)));
  }
};

/// Shared latency model + jitter stream. One Fabric per simulation.
class Fabric {
 public:
  explicit Fabric(FabricConfig config = {}, std::uint64_t seed = 0xFAB)
      : config_(config), rng_(seed) {}

  [[nodiscard]] const FabricConfig& config() const noexcept { return config_; }

  /// One-way small-message latency with jitter applied.
  [[nodiscard]] SimDuration one_way() noexcept {
    if (config_.jitter_sigma <= 0.0) return config_.one_way_ns;
    const double v = rng_.next_lognormal(
        static_cast<double>(config_.one_way_ns), config_.jitter_sigma);
    return static_cast<SimDuration>(std::llround(v));
  }

  /// Fork a deterministic per-component RNG (e.g. for crash instants).
  [[nodiscard]] Rng fork_rng() noexcept { return rng_.fork(); }

  /// Arm fault injection on every QP/RPC using this fabric (nullptr
  /// disarms). The injector must outlive the fabric.
  void set_injector(fault::Injector* injector) noexcept {
    injector_ = injector;
  }
  /// Armed injector, or nullptr. Callers must also check enabled().
  [[nodiscard]] fault::Injector* injector() const noexcept {
    return injector_;
  }

 private:
  FabricConfig config_;
  Rng rng_;
  fault::Injector* injector_ = nullptr;
};

}  // namespace efac::rdma
