// Reliable-connected queue pair: the client's handle for issuing verbs at a
// target node.
//
// Timing is computed analytically at post time from the Fabric constants:
//
//   t_issue   = now + post_overhead                 (requester CPU)
//   t_depart  = max(t_issue, previous departure)    (QP/wire is FIFO)
//   t_on_wire = payload bytes * wire_byte_ns        (serialization)
//   t_arrive  = t_depart + t_on_wire + one_way + nic_process
//   t_done    = t_arrive + one_way + completion     (+ response bytes for READ)
//
// Per-QP ordering is enforced the way an RC QP does: execution at the
// responder follows posting order (arrivals are monotonic). WRITE payloads
// are handed to the target arena as a chunked DMA placement spanning the
// wire interval, so concurrent readers and crashes see partial objects.
//
// post_write() is the fire-and-forget form used by SAW: it performs all
// bookkeeping immediately and returns the completion instant without
// suspending, so a subsequent send() on the same QP is ordered behind the
// write exactly as ibv_post_send ordering guarantees.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "metrics/metrics.hpp"
#include "rdma/fabric.hpp"
#include "rdma/node.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "trace/event_log.hpp"

namespace efac::rdma {

/// Snapshot of a QP's verb counters (view over the metrics registry).
struct QpStats {
  std::uint64_t reads = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t writes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t sends = 0;
  std::uint64_t send_bytes = 0;
  std::uint64_t writes_with_imm = 0;
  std::uint64_t cas_ops = 0;
  std::uint64_t commits = 0;
};

class QueuePair {
 public:
  /// `registry` hosts the QP's counters (names "qp.*"); pass the owning
  /// client's registry so verb traffic lands next to client counters.
  /// nullptr → the QP owns a private registry. `recorder` (optional) is a
  /// borrowed pointer to the owning actor's flight recorder; verbs posted
  /// on this QP then emit one kQpVerb event each, tagged with the owner's
  /// current causal op id.
  QueuePair(sim::Simulator& sim, Fabric& fabric, Node& target,
            std::uint64_t qp_id, metrics::MetricsRegistry* registry = nullptr,
            const trace::Recorder* recorder = nullptr)
      : sim_(sim),
        fabric_(fabric),
        target_(target),
        id_(qp_id),
        owned_metrics_(registry == nullptr
                           ? std::make_unique<metrics::MetricsRegistry>()
                           : nullptr),
        metrics_(registry == nullptr ? *owned_metrics_ : *registry),
        rec_(recorder),
        stats_(metrics_) {}
  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] QpStats stats() const noexcept {
    return QpStats{stats_.reads,           stats_.read_bytes,
                   stats_.writes,          stats_.write_bytes,
                   stats_.sends,           stats_.send_bytes,
                   stats_.writes_with_imm, stats_.cas_ops,
                   stats_.commits};
  }
  [[nodiscard]] metrics::MetricsRegistry& metrics() noexcept {
    return metrics_;
  }
  [[nodiscard]] Node& target() noexcept { return target_; }

  /// One-sided READ: snapshot of remote memory taken at arrival instant.
  sim::Task<Expected<Bytes>> read(std::uint32_t rkey, MemOffset offset,
                                  std::size_t length);

  /// Doorbell-coalesced pair of one-sided READs: both WQEs are built and
  /// rung together (the second pays doorbell_entry_ns instead of the full
  /// post_overhead_ns), execute in posting order at the responder, and the
  /// caller resumes once both completions are in — so two dependent-free
  /// snapshots cost one round trip instead of two. Each half fails
  /// independently (translate NAKs don't poison the sibling). This is the
  /// verb pair behind the client's speculative GET: entry and predicted
  /// object are fetched together, and the entry decides afterwards whether
  /// the object snapshot was the right one.
  sim::Task<std::pair<Expected<Bytes>, Expected<Bytes>>> read_pair(
      std::uint32_t rkey1, MemOffset offset1, std::size_t length1,
      std::uint32_t rkey2, MemOffset offset2, std::size_t length2);

  /// One-sided WRITE, awaited to completion (ack received). Completion does
  /// NOT imply durability: the payload sits in the volatile tier (DDIO).
  /// This is the verb an armed fault injector can tear (partial payload,
  /// completion lost) or whose completion it can drop; both surface as
  /// StatusCode::kTimeout after the requester's local grace period.
  sim::Task<Expected<Unit>> write(std::uint32_t rkey, MemOffset offset,
                                  BytesView data);

  /// Fire-and-forget WRITE: posts and returns the completion instant.
  /// Subsequent verbs on this QP execute after it at the responder.
  Expected<SimTime> post_write(std::uint32_t rkey, MemOffset offset,
                               BytesView data);

  /// Fire-and-forget WRITE posted as a non-head entry of a doorbell-
  /// coalesced burst: the WQE was built and linked together with the burst
  /// head, so the per-WR CPU cost is doorbell_entry_ns instead of the full
  /// post_overhead_ns. Wire/NIC/ack timing is unchanged, and per-QP FIFO
  /// ordering still holds, so awaiting the burst's last completion covers
  /// the whole burst.
  Expected<SimTime> post_write_coalesced(std::uint32_t rkey, MemOffset offset,
                                         BytesView data);

  /// Fire-and-forget WRITE_WITH_IMM (optionally doorbell-coalesced):
  /// places the payload, delivers the immediate notification at the
  /// execution instant, and returns the requester-side completion instant
  /// without suspending.
  Expected<SimTime> post_write_with_imm(std::uint32_t rkey, MemOffset offset,
                                        BytesView data, std::uint32_t imm,
                                        bool coalesced = false);

  /// WRITE_WITH_IMM: places the payload, then delivers an immediate
  /// notification (consuming a receive) ordered after the placement.
  sim::Task<Expected<Unit>> write_with_imm(std::uint32_t rkey,
                                           MemOffset offset, BytesView data,
                                           std::uint32_t imm);

  /// Two-sided SEND: payload lands in the target's receive queue.
  /// Completion means the message was delivered (RC ack), not processed.
  sim::Task<void> send(Bytes payload);

  /// Fire-and-forget SEND (used after post_write by SAW).
  void post_send(Bytes payload);

  /// 8-byte remote compare-and-swap; returns the previous value.
  sim::Task<Expected<std::uint64_t>> compare_and_swap(std::uint32_t rkey,
                                                      MemOffset offset,
                                                      std::uint64_t expected,
                                                      std::uint64_t desired);

  /// 8-byte remote fetch-and-add; returns the previous value.
  sim::Task<Expected<std::uint64_t>> fetch_add(std::uint32_t rkey,
                                               MemOffset offset,
                                               std::uint64_t addend);

  /// RDMA Commit (the rcommit verb of the IETF "RDMA Durable Write
  /// Commit" draft the paper's §7.1 discusses): the responder NIC flushes
  /// [offset, offset+length) to the media with NO remote-CPU involvement.
  /// Ordered after prior WRs on this QP; the ack implies durability.
  /// This models proposed hardware — no shipping NIC implements it.
  /// An *awaited* commit() completion is an ordering-equivalent of
  /// flush+fence, so it counts as EFAC_PERSISTS-style persist evidence
  /// under the static contract checker (src/common/contracts.hpp) —
  /// mark the awaiting path accordingly, as rcommit.cpp does.
  sim::Task<Expected<Unit>> commit(std::uint32_t rkey, MemOffset offset,
                                   std::size_t length);

  /// Fire-and-forget commit: returns the completion instant; subsequent
  /// verbs on this QP execute after the flush finishes.
  Expected<SimTime> post_commit(std::uint32_t rkey, MemOffset offset,
                                std::size_t length);

 private:
  /// Registry-backed counters; field names mirror QpStats so increment
  /// sites read identically.
  struct Counters {
    explicit Counters(metrics::MetricsRegistry& r)
        : reads(r.counter("qp.reads")),
          read_bytes(r.counter("qp.read_bytes")),
          writes(r.counter("qp.writes")),
          write_bytes(r.counter("qp.write_bytes")),
          sends(r.counter("qp.sends")),
          send_bytes(r.counter("qp.send_bytes")),
          writes_with_imm(r.counter("qp.writes_with_imm")),
          cas_ops(r.counter("qp.cas_ops")),
          commits(r.counter("qp.commits")) {}
    metrics::Counter& reads;
    metrics::Counter& read_bytes;
    metrics::Counter& writes;
    metrics::Counter& write_bytes;
    metrics::Counter& sends;
    metrics::Counter& send_bytes;
    metrics::Counter& writes_with_imm;
    metrics::Counter& cas_ops;
    metrics::Counter& commits;
  };

  struct Timing {
    SimTime depart;        ///< payload starts on the wire
    SimTime arrive;        ///< executed at the responder
    SimTime done;          ///< requester observes the completion
  };

  /// Compute and commit the timeline of the next WR on this QP.
  Timing plan(std::size_t request_payload, std::size_t response_payload);

  /// plan() with an explicit requester CPU cost (doorbell-coalesced burst
  /// entries pay doorbell_entry_ns instead of post_overhead_ns). Draws the
  /// same two jitter samples as plan(), so the fabric RNG stream — and with
  /// it every later verb's timing — is independent of coalescing.
  Timing plan_with_overhead(std::size_t request_payload,
                            std::size_t response_payload,
                            SimDuration post_overhead);

  /// Shared body of post_write / post_write_coalesced.
  Expected<SimTime> post_write_overhead(std::uint32_t rkey, MemOffset offset,
                                        BytesView data,
                                        SimDuration post_overhead);

  /// One flight-recorder event per verb, emitted at post time: `done` is
  /// known analytically from plan(), so no end-event is needed and ring
  /// appends stay in emission order.
  void record_verb(trace::Verb verb, SimTime done, std::size_t bytes) const {
    if (rec_ != nullptr) {
      rec_->emit(trace::EventType::kQpVerb,
                 static_cast<std::uint8_t>(verb),
                 static_cast<std::uint64_t>(done), bytes);
    }
  }

  /// Translate + snapshot one READ's bytes at the current (execution)
  /// instant; shared by read() and read_pair().
  Expected<Bytes> read_snapshot(std::uint32_t rkey, MemOffset offset,
                                std::size_t length);

  /// Deliver a message into the target's receive queue at `when`.
  void deliver_at(SimTime when, InboundMessage message);

  /// deliver_at with the fabric's fault injector consulted first (message
  /// drop / delay / duplication).
  void deliver_message(SimTime when, InboundMessage message);

  /// Slow path of write() taken only when a fault fired for this WR.
  sim::Task<Expected<Unit>> write_faulted(std::uint32_t rkey,
                                          MemOffset offset, BytesView data,
                                          bool torn, bool lost_ack, bool dup);

  sim::Simulator& sim_;
  Fabric& fabric_;
  Node& target_;
  std::uint64_t id_;
  SimTime last_depart_ = 0;
  SimTime last_arrive_ = 0;
  // owned_metrics_ (if any) must be declared before the Counter references
  // in stats_.
  std::unique_ptr<metrics::MetricsRegistry> owned_metrics_;
  metrics::MetricsRegistry& metrics_;
  const trace::Recorder* rec_;
  Counters stats_;
};

}  // namespace efac::rdma
