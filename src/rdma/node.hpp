// A host on the fabric: registered memory regions plus a receive queue.
//
// A Node models the RDMA-visible face of a machine. The server node wraps
// an nvm::Arena; memory regions registered on it are windows into that
// arena, addressed remotely by (rkey, offset). Two-sided traffic (SEND,
// WRITE_WITH_IMM notifications) lands in the node's receive queue, from
// which server worker coroutines pop.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "nvm/arena.hpp"
#include "sim/sync.hpp"

namespace efac::rdma {

/// MR access permissions (bitmask).
enum class Access : std::uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kAtomic = 4,
  kReadWrite = 3,
  kAll = 7,
};

constexpr Access operator|(Access a, Access b) noexcept {
  return static_cast<Access>(static_cast<std::uint8_t>(a) |
                             static_cast<std::uint8_t>(b));
}
constexpr bool has_access(Access granted, Access wanted) noexcept {
  return (static_cast<std::uint8_t>(granted) &
          static_cast<std::uint8_t>(wanted)) ==
         static_cast<std::uint8_t>(wanted);
}

/// A registered memory region: a remotely addressable window of the arena.
struct MemoryRegion {
  std::uint32_t rkey = 0;
  MemOffset base = 0;
  std::size_t length = 0;
  Access access = Access::kNone;
};

/// An inbound two-sided message (SEND payload or WRITE_WITH_IMM notice).
struct InboundMessage {
  Bytes payload;                 ///< SEND payload (empty for pure IMM)
  std::uint32_t imm = 0;         ///< immediate field
  bool has_imm = false;
  std::uint64_t src_qp = 0;      ///< originating QP id (for replies)
  SimTime arrived_at = 0;
};

class Node {
 public:
  /// `arena` may be null for client-only nodes (nothing registered).
  Node(sim::Simulator& sim, nvm::Arena* arena)
      : sim_(sim), arena_(arena), recv_queue_(sim) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Register [base, base+length) of the arena; returns the rkey remote
  /// peers must present.
  std::uint32_t register_mr(MemOffset base, std::size_t length,
                            Access access) {
    EFAC_CHECK_MSG(arena_ != nullptr, "registering MR on a memory-less node");
    EFAC_CHECK_MSG(base + length <= arena_->size(), "MR exceeds arena");
    const std::uint32_t rkey = next_rkey_++;
    mrs_.emplace(rkey, MemoryRegion{rkey, base, length, access});
    return rkey;
  }

  /// Invalidate a previously registered region (e.g. a retired data pool).
  void deregister_mr(std::uint32_t rkey) { mrs_.erase(rkey); }

  /// Validate a remote access; returns the absolute arena offset.
  [[nodiscard]] Expected<MemOffset> translate(std::uint32_t rkey,
                                              MemOffset offset,
                                              std::size_t length,
                                              Access wanted) const {
    const auto it = mrs_.find(rkey);
    if (it == mrs_.end()) {
      return Status{StatusCode::kPermission, "unknown rkey"};
    }
    const MemoryRegion& mr = it->second;
    if (!has_access(mr.access, wanted)) {
      return Status{StatusCode::kPermission, "access not granted"};
    }
    if (offset > mr.length || length > mr.length - offset) {
      return Status{StatusCode::kPermission, "MR bounds violation"};
    }
    return mr.base + offset;
  }

  [[nodiscard]] nvm::Arena& arena() {
    EFAC_CHECK(arena_ != nullptr);
    return *arena_;
  }
  [[nodiscard]] bool has_arena() const noexcept { return arena_ != nullptr; }

  [[nodiscard]] sim::Channel<InboundMessage>& recv_queue() noexcept {
    return recv_queue_;
  }

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

 private:
  sim::Simulator& sim_;
  nvm::Arena* arena_;
  sim::Channel<InboundMessage> recv_queue_;
  std::unordered_map<std::uint32_t, MemoryRegion> mrs_;
  std::uint32_t next_rkey_ = 100;
};

}  // namespace efac::rdma
