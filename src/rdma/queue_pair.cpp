#include "rdma/queue_pair.hpp"

#include <algorithm>
#include <utility>

namespace efac::rdma {

QueuePair::Timing QueuePair::plan(std::size_t request_payload,
                                  std::size_t response_payload) {
  return plan_with_overhead(request_payload, response_payload,
                            fabric_.config().post_overhead_ns);
}

QueuePair::Timing QueuePair::plan_with_overhead(std::size_t request_payload,
                                                std::size_t response_payload,
                                                SimDuration post_overhead) {
  const FabricConfig& cfg = fabric_.config();
  const SimTime now = sim_.now();
  const SimTime issue = now + post_overhead;
  const SimTime depart = std::max(issue, last_depart_);
  const SimTime depart_end = depart + cfg.wire_cost(request_payload);
  last_depart_ = depart_end;

  SimTime arrive = depart_end + fabric_.one_way() + cfg.nic_process_ns;
  arrive = std::max(arrive, last_arrive_ + 1);  // responder executes in order
  last_arrive_ = arrive;

  const SimTime done = arrive + fabric_.one_way() +
                       cfg.wire_cost(response_payload) + cfg.completion_ns;
  return Timing{depart, arrive, done};
}

void QueuePair::deliver_at(SimTime when, InboundMessage message) {
  sim_.call_at(when, [node = &target_, msg = std::move(message)]() mutable {
    node->recv_queue().push(std::move(msg));
  });
}

void QueuePair::deliver_message(SimTime when, InboundMessage message) {
  if (fault::Injector* inj = fabric_.injector();
      inj != nullptr && inj->enabled()) {
    if (inj->fire(fault::Site::kSendDrop)) return;
    if (inj->fire(fault::Site::kSendDelay)) {
      when += inj->spec(fault::Site::kSendDelay).delay_ns;
      message.arrived_at = when;
    }
    if (inj->fire(fault::Site::kSendDuplicate)) {
      InboundMessage copy = message;
      const SimTime later =
          when + inj->spec(fault::Site::kSendDuplicate).delay_ns;
      copy.arrived_at = later;
      deliver_at(later, std::move(copy));
    }
  }
  deliver_at(when, std::move(message));
}

sim::Task<Expected<Bytes>> QueuePair::read(std::uint32_t rkey,
                                           MemOffset offset,
                                           std::size_t length) {
  ++stats_.reads;
  stats_.read_bytes += length;
  // READ request is a small header; the payload rides the response.
  const Timing t = plan(/*request_payload=*/32, /*response_payload=*/length);
  record_verb(trace::Verb::kRead, t.done, length);

  co_await sim::delay(sim_, t.arrive - sim_.now());
  Expected<Bytes> data = read_snapshot(rkey, offset, length);
  // On a NAK the status travels back one way, same as the data would.
  co_await sim::delay(sim_, t.done - sim_.now());
  co_return data;
}

Expected<Bytes> QueuePair::read_snapshot(std::uint32_t rkey, MemOffset offset,
                                         std::size_t length) {
  const Expected<MemOffset> abs =
      target_.translate(rkey, offset, length, Access::kRead);
  if (!abs) return abs.status();
  // Snapshot at execution instant: a racing WRITE that has only partially
  // landed is observed partially — exactly the paper's read-write race.
  return target_.arena().load(*abs, length);
}

sim::Task<std::pair<Expected<Bytes>, Expected<Bytes>>> QueuePair::read_pair(
    std::uint32_t rkey1, MemOffset offset1, std::size_t length1,
    std::uint32_t rkey2, MemOffset offset2, std::size_t length2) {
  stats_.reads += 2;
  stats_.read_bytes += length1 + length2;
  // Both WQEs are planned back-to-back before any suspension: the second
  // rides the first's doorbell (doorbell_entry_ns of requester CPU) and
  // executes after it at the responder, per-QP FIFO as always.
  const Timing t1 = plan(/*request_payload=*/32, /*response_payload=*/length1);
  const Timing t2 =
      plan_with_overhead(/*request_payload=*/32, /*response_payload=*/length2,
                         fabric_.config().doorbell_entry_ns);
  record_verb(trace::Verb::kRead, t1.done, length1);
  record_verb(trace::Verb::kRead, t2.done, length2);

  co_await sim::delay(sim_, t1.arrive - sim_.now());
  Expected<Bytes> first = read_snapshot(rkey1, offset1, length1);
  co_await sim::delay(sim_, t2.arrive - sim_.now());
  Expected<Bytes> second = read_snapshot(rkey2, offset2, length2);
  // Completions can land out of order when the payloads differ wildly
  // (responses serialize per response, not per WR); the caller resumes at
  // the later of the two.
  const SimTime done = std::max(t1.done, t2.done);
  co_await sim::delay(sim_, done - sim_.now());
  co_return std::pair<Expected<Bytes>, Expected<Bytes>>{std::move(first),
                                                        std::move(second)};
}

Expected<SimTime> QueuePair::post_write(std::uint32_t rkey, MemOffset offset,
                                        BytesView data) {
  return post_write_overhead(rkey, offset, data,
                             fabric_.config().post_overhead_ns);
}

Expected<SimTime> QueuePair::post_write_coalesced(std::uint32_t rkey,
                                                  MemOffset offset,
                                                  BytesView data) {
  return post_write_overhead(rkey, offset, data,
                             fabric_.config().doorbell_entry_ns);
}

Expected<SimTime> QueuePair::post_write_overhead(std::uint32_t rkey,
                                                 MemOffset offset,
                                                 BytesView data,
                                                 SimDuration post_overhead) {
  const Expected<MemOffset> abs =
      target_.translate(rkey, offset, data.size(), Access::kWrite);
  if (!abs) return abs.status();

  ++stats_.writes;
  stats_.write_bytes += data.size();
  const Timing t = plan_with_overhead(/*request_payload=*/data.size(),
                                      /*response_payload=*/0, post_overhead);
  record_verb(trace::Verb::kWrite, t.done, data.size());
  // First byte reaches the media interface one_way after departure; the
  // last lands at the execution instant.
  const SimTime place_begin = std::min<SimTime>(
      t.arrive, t.depart + fabric_.config().one_way_ns +
                    fabric_.config().nic_process_ns);
  target_.arena().dma_write(*abs, data, place_begin, t.arrive,
                            fabric_.config().placement);
  return t.done;
}

sim::Task<Expected<Unit>> QueuePair::write(std::uint32_t rkey,
                                           MemOffset offset, BytesView data) {
  if (fault::Injector* inj = fabric_.injector();
      inj != nullptr && inj->enabled()) {
    const bool torn = inj->fire(fault::Site::kWriteTorn);
    const bool lost_ack = inj->fire(fault::Site::kWriteDropCompletion);
    const bool dup = inj->fire(fault::Site::kWriteDuplicate);
    if (torn || lost_ack || dup) {
      co_return co_await write_faulted(rkey, offset, data, torn, lost_ack,
                                       dup);
    }
  }
  Expected<SimTime> done = post_write(rkey, offset, data);
  if (!done) {
    // Model the NAK round trip for invalid access.
    const Timing t = plan(32, 0);
    co_await sim::delay(sim_, t.done - sim_.now());
    co_return done.status();
  }
  co_await sim::delay(sim_, *done - sim_.now());
  co_return Unit{};
}

sim::Task<Expected<Unit>> QueuePair::write_faulted(std::uint32_t rkey,
                                                   MemOffset offset,
                                                   BytesView data, bool torn,
                                                   bool lost_ack, bool dup) {
  const Expected<MemOffset> abs =
      target_.translate(rkey, offset, data.size(), Access::kWrite);
  if (!abs) {
    const Timing t = plan(32, 0);
    co_await sim::delay(sim_, t.done - sim_.now());
    co_return abs.status();
  }
  ++stats_.writes;
  stats_.write_bytes += data.size();
  const Timing t = plan(data.size(), 0);
  const SimTime place_begin = std::min<SimTime>(
      t.arrive, t.depart + fabric_.config().one_way_ns +
                    fabric_.config().nic_process_ns);
  fault::Injector& inj = *fabric_.injector();
  BytesView placed = data;
  if (torn) {
    // Only the leading fraction of the payload reaches the target before
    // the (modelled) transport gives up — the canonical torn remote write.
    const double keep = std::clamp(
        inj.spec(fault::Site::kWriteTorn).magnitude, 0.0, 1.0);
    placed = data.first(static_cast<std::size_t>(
        keep * static_cast<double>(data.size())));
  }
  if (!placed.empty()) {
    target_.arena().dma_write(*abs, placed, place_begin, t.arrive,
                              fabric_.config().placement);
  }
  if (dup) {
    // Spurious retransmission: the same bytes land a second time later.
    const SimTime later =
        t.arrive + inj.spec(fault::Site::kWriteDuplicate).delay_ns;
    sim_.call_at(later, [node = &target_, off = *abs,
                         payload = Bytes(placed.begin(), placed.end()), later,
                         order = fabric_.config().placement] {
      node->arena().dma_write(off, payload, later, later, order);
    });
  }
  if (torn || lost_ack) {
    // No completion arrives; the requester notices only after its local
    // grace period past the instant the ack would normally have landed.
    const SimDuration grace =
        inj.spec(torn ? fault::Site::kWriteTorn
                      : fault::Site::kWriteDropCompletion)
            .delay_ns;
    record_verb(trace::Verb::kWriteFaulted, t.done + grace, data.size());
    co_await sim::delay(sim_, t.done - sim_.now() + grace);
    co_return Status{StatusCode::kTimeout, "WRITE completion lost"};
  }
  record_verb(trace::Verb::kWriteFaulted, t.done, data.size());
  co_await sim::delay(sim_, t.done - sim_.now());
  co_return Unit{};
}

Expected<SimTime> QueuePair::post_write_with_imm(std::uint32_t rkey,
                                                 MemOffset offset,
                                                 BytesView data,
                                                 std::uint32_t imm,
                                                 bool coalesced) {
  const Expected<MemOffset> abs =
      target_.translate(rkey, offset, data.size(), Access::kWrite);
  if (!abs) return abs.status();
  ++stats_.writes_with_imm;
  stats_.write_bytes += data.size();
  const FabricConfig& cfg = fabric_.config();
  const Timing t = plan_with_overhead(
      data.size(), 0,
      coalesced ? cfg.doorbell_entry_ns : cfg.post_overhead_ns);
  record_verb(trace::Verb::kWriteImm, t.done, data.size());
  const SimTime place_begin = std::min<SimTime>(
      t.arrive, t.depart + cfg.one_way_ns + cfg.nic_process_ns);
  target_.arena().dma_write(*abs, data, place_begin, t.arrive,
                            cfg.placement);
  deliver_message(t.arrive, InboundMessage{Bytes{}, imm, /*has_imm=*/true,
                                           id_, t.arrive});
  return t.done;
}

sim::Task<Expected<Unit>> QueuePair::write_with_imm(std::uint32_t rkey,
                                                    MemOffset offset,
                                                    BytesView data,
                                                    std::uint32_t imm) {
  const Expected<MemOffset> abs =
      target_.translate(rkey, offset, data.size(), Access::kWrite);
  if (!abs) {
    const Timing t = plan(32, 0);
    co_await sim::delay(sim_, t.done - sim_.now());
    co_return abs.status();
  }
  ++stats_.writes_with_imm;
  stats_.write_bytes += data.size();
  const Timing t = plan(data.size(), 0);
  record_verb(trace::Verb::kWriteImm, t.done, data.size());
  const SimTime place_begin = std::min<SimTime>(
      t.arrive, t.depart + fabric_.config().one_way_ns +
                    fabric_.config().nic_process_ns);
  target_.arena().dma_write(*abs, data, place_begin, t.arrive,
                            fabric_.config().placement);
  // The immediate notification is delivered when the message executes,
  // strictly after the payload placement (same WR).
  deliver_message(t.arrive, InboundMessage{Bytes{}, imm, /*has_imm=*/true,
                                           id_, t.arrive});
  co_await sim::delay(sim_, t.done - sim_.now());
  co_return Unit{};
}

sim::Task<void> QueuePair::send(Bytes payload) {
  ++stats_.sends;
  stats_.send_bytes += payload.size();
  const Timing t = plan(payload.size(), 0);
  record_verb(trace::Verb::kSend, t.done, payload.size());
  deliver_message(t.arrive, InboundMessage{std::move(payload), 0,
                                           /*has_imm=*/false, id_, t.arrive});
  co_await sim::delay(sim_, t.done - sim_.now());
}

void QueuePair::post_send(Bytes payload) {
  ++stats_.sends;
  stats_.send_bytes += payload.size();
  const Timing t = plan(payload.size(), 0);
  record_verb(trace::Verb::kSend, t.done, payload.size());
  deliver_message(t.arrive, InboundMessage{std::move(payload), 0,
                                           /*has_imm=*/false, id_, t.arrive});
}

Expected<SimTime> QueuePair::post_commit(std::uint32_t rkey,
                                         MemOffset offset,
                                         std::size_t length) {
  const Expected<MemOffset> abs =
      target_.translate(rkey, offset, length, Access::kWrite);
  if (!abs) return abs.status();
  ++stats_.commits;
  const Timing t = plan(/*request_payload=*/32, /*response_payload=*/0);
  // The NIC drains the region to the media; subsequent WRs on this QP
  // execute only after the flush completes, and the ack follows it.
  const nvm::CostModel& cost = target_.arena().cost();
  const SimDuration flush_time =
      cost.flush_cost(length) + cost.fence_ns;
  sim_.call_at(t.arrive, [node = &target_, off = *abs, length] {
    node->arena().flush(off, length);
  });
  last_arrive_ = t.arrive + flush_time;
  record_verb(trace::Verb::kCommit, t.done + flush_time, length);
  return t.done + flush_time;
}

sim::Task<Expected<Unit>> QueuePair::commit(std::uint32_t rkey,
                                            MemOffset offset,
                                            std::size_t length) {
  const Expected<SimTime> done = post_commit(rkey, offset, length);
  if (!done) {
    const Timing t = plan(32, 0);
    co_await sim::delay(sim_, t.done - sim_.now());
    co_return done.status();
  }
  co_await sim::delay(sim_, *done - sim_.now());
  co_return Unit{};
}

sim::Task<Expected<std::uint64_t>> QueuePair::fetch_add(std::uint32_t rkey,
                                                        MemOffset offset,
                                                        std::uint64_t addend) {
  ++stats_.cas_ops;  // both one-sided atomics share the counter
  const Timing t = plan(/*request_payload=*/40, /*response_payload=*/8);
  record_verb(trace::Verb::kFetchAdd, t.done, 8);
  co_await sim::delay(sim_, t.arrive - sim_.now());
  const Expected<MemOffset> abs =
      target_.translate(rkey, offset, 8, Access::kAtomic);
  if (!abs) {
    co_await sim::delay(sim_, t.done - sim_.now());
    co_return abs.status();
  }
  nvm::Arena& arena = target_.arena();
  const std::uint64_t old = arena.load_u64(*abs);
  arena.store_u64(*abs, old + addend);
  co_await sim::delay(sim_, t.done - sim_.now());
  co_return old;
}

sim::Task<Expected<std::uint64_t>> QueuePair::compare_and_swap(
    std::uint32_t rkey, MemOffset offset, std::uint64_t expected,
    std::uint64_t desired) {
  ++stats_.cas_ops;
  const Timing t = plan(/*request_payload=*/40, /*response_payload=*/8);
  record_verb(trace::Verb::kCas, t.done, 8);
  co_await sim::delay(sim_, t.arrive - sim_.now());
  const Expected<MemOffset> abs =
      target_.translate(rkey, offset, 8, Access::kAtomic);
  if (!abs) {
    co_await sim::delay(sim_, t.done - sim_.now());
    co_return abs.status();
  }
  nvm::Arena& arena = target_.arena();
  const std::uint64_t old = arena.load_u64(*abs);
  if (old == expected) {
    arena.store_u64(*abs, desired);
  }
  co_await sim::delay(sim_, t.done - sim_.now());
  co_return old;
}

}  // namespace efac::rdma
