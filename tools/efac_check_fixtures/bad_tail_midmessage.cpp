// EFAC003: optional wire tails must be feature-gated and append-only —
// a tail written unconditionally changes every client's wire size, and a
// fixed field after a sometimes-present tail shifts its own offset.
// Shape: the AllocResponse::durable_eta hint tail done wrong.
#include "common/contracts.hpp"

struct ByteWriter {
  void put_u8(unsigned char v);
  void put_u32(unsigned int v);
  void put_u64(unsigned long v);
};

void encode_ungated_tail(ByteWriter& w, unsigned long eta) {
  w.put_u32(7);
  // not inside any conditional and no exhaustion guard:
  EFAC_WIRE_TAIL("fixture.ungated");  // EXPECT: EFAC003
  w.put_u64(eta);
}

void encode_field_after_tail(ByteWriter& w, bool carry, unsigned long eta) {
  w.put_u32(7);
  if (carry) {
    EFAC_WIRE_TAIL("fixture.gated_eta");
    w.put_u64(eta);
  }
  // fixed-layout field AFTER the optional tail: its wire offset now
  // depends on `carry`
  w.put_u8(1);  // EXPECT: EFAC003
}

void encode_tail_done_right(ByteWriter& w, bool carry, unsigned long eta) {
  w.put_u32(7);
  w.put_u8(1);
  if (carry) {
    EFAC_WIRE_TAIL("fixture.good_eta");
    w.put_u64(eta);
  }
}
