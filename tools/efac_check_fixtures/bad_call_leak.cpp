// EFAC004: every call_begin needs a call_finish or call_abandon before
// the function gives up control for good — a leaked PendingCall pins its
// slot and the reply waiter forever. Shape: the PR 8 hedged-GET path,
// minus the abandon.
struct Connection {
  int call_begin(int opcode);
  void call_finish(int id);
  void call_abandon(int id);
};

int leak_every_path(Connection& conn) {
  const int id = conn.call_begin(3);
  return id;  // EXPECT: EFAC004  (never finished nor abandoned)
}

int leak_from_branch(Connection& conn, bool hedge) {
  int id = -1;
  if (hedge) {
    // branch-local begin: the optimistic path merge stays silent, but
    // the whole function lacks any finish/abandon — tier A reports at
    // the begin
    id = conn.call_begin(3);  // EXPECT: EFAC004
  }
  return id;
}

int leak_on_early_return(Connection& conn, bool fast_path) {
  const int id = conn.call_begin(3);
  if (fast_path) {
    return -1;  // EXPECT: EFAC004
  }
  conn.call_finish(id);
  return id;
}

int balanced_hedge(Connection& conn, bool hedge_won) {
  const int id = conn.call_begin(3);
  if (hedge_won) {
    conn.call_abandon(id);
    return -1;
  }
  conn.call_finish(id);
  return id;
}
