// EFAC001 (REQUIRES form): calling a function that demands durability
// evidence without establishing it first. Shape: assert_object_durable
// reached before the verifier flushed — exactly what the dynamic checker
// can only catch on executed schedules.
#include "common/contracts.hpp"

void fixture_assert_durable(unsigned long off, unsigned long span) {
  EFAC_FN_REQUIRES_DURABLE();
  (void)off;
  (void)span;
}

bool fixture_verify(unsigned long off) {
  EFAC_FN_ESTABLISHES_DURABLE();
  if (off == 0) {
    EFAC_NO_CLAIM("fixture.verify.null");
    return false;
  }
  EFAC_PERSISTS("fixture.verify.flushed");
  return true;
}

void claim_before_evidence(unsigned long off) {
  fixture_assert_durable(off, 64);  // EXPECT: EFAC001
}

void claim_in_wrong_branch(unsigned long off) {
  if (fixture_verify(off)) {
    fixture_assert_durable(off, 64);  // fine: success branch
  } else {
    // failure branch of the establishing call: no evidence here
    fixture_assert_durable(off, 64);  // EXPECT: EFAC001
  }
}

void claim_after_unconditional_persist(unsigned long off) {
  EFAC_PERSISTS("fixture.direct");
  fixture_assert_durable(off, 64);  // fine
}
