// EFAC002: a function whose signature promises "returns == durable or
// explicitly claims nothing", with one return path that breaks the
// promise. Shape: verify_and_persist with a torn-object early-out the
// author forgot to mark EFAC_NO_CLAIM.
#include "common/contracts.hpp"

struct Obj {
  bool verify_crc() const;
  void flush_all();
};

bool broken_promise(Obj& obj, bool meta_ok) {
  EFAC_FN_ESTABLISHES_DURABLE();
  if (!meta_ok) {
    return false;  // EXPECT: EFAC002
  }
  if (!obj.verify_crc()) {
    EFAC_NO_CLAIM("fixture.torn");
    return false;  // fine: explicitly claims nothing
  }
  obj.flush_all();
  EFAC_PERSISTS("fixture.flush_fence");
  return true;  // fine: persisted
}

bool promise_broken_by_fallthrough(Obj& obj, int tries) {
  EFAC_FN_ESTABLISHES_DURABLE();
  for (int i = 0; i < tries; ++i) {
    if (obj.verify_crc()) {
      obj.flush_all();
      EFAC_PERSISTS("fixture.loop_flush");
      return true;
    }
  }
  // exhausting the loop falls out with no persist and no NO_CLAIM
  return false;  // EXPECT: EFAC002
}
