// Zero-finding reference: every contract pattern done right, in the
// shapes the real tree uses. Any finding in this file is a
// false-positive regression (fixture mode fails on spurious findings).
#include "common/contracts.hpp"

struct Arena {
  void flush(unsigned long off, unsigned long len);
  bool is_dirty(unsigned long off, unsigned long len);
};
struct Obj {
  bool is_durable() const {
    EFAC_FN_OBSERVES_DURABLE();
    return true;
  }
  bool verify_crc() const;
};
struct Replier {
  void reply(int status);
};
struct ByteReader {
  bool exhausted() const;
  unsigned char get_u8();
  unsigned long get_u64();
};

bool establishes_correctly(Arena& arena, Obj& obj, unsigned long off) {
  EFAC_FN_ESTABLISHES_DURABLE();
  if (obj.is_durable()) return true;
  if (!obj.verify_crc()) {
    EFAC_NO_CLAIM("clean.torn");
    return false;
  }
  arena.flush(off, 64);
  EFAC_PERSISTS("clean.flush_fence");
  return true;
}

void requires_correctly(unsigned long off, unsigned long span) {
  EFAC_FN_REQUIRES_DURABLE();
  (void)off;
  (void)span;
}

void ack_via_interprocedural_evidence(Arena& arena, Obj& obj, Replier r) {
  // a plain call of an ESTABLISHES function is claim evidence: every one
  // of its return paths persisted or explicitly claims nothing
  establishes_correctly(arena, obj, 0);
  EFAC_ACK_SITE("clean.ack");
  r.reply(0);
}

void ack_via_branch_evidence(Arena& arena, Obj& obj, Replier r,
                             unsigned long off) {
  if (establishes_correctly(arena, obj, off)) {
    requires_correctly(off, 64);
  } else {
    EFAC_NO_CLAIM("clean.verify_failed");
  }
  EFAC_ACK_SITE("clean.branchy_ack");
  r.reply(0);
}

void ack_via_observed_flag(Obj& obj, Replier r, unsigned long off) {
  if (obj.is_durable()) {
    requires_correctly(off, 64);
    EFAC_ACK_SITE("clean.flag_hit_ack");
    r.reply(0);
  }
}

unsigned long decode_guarded_tail(ByteReader& r) {
  unsigned long eta = 0;
  if (!r.exhausted()) {
    EFAC_WIRE_TAIL("clean.eta");
    eta = r.get_u64();
  }
  return eta;
}

bool decode_comma_guarded_tail(ByteReader& r) {
  // the wire.cpp idiom: marker folded into the exhaustion-guarded read
  const bool hint =
      (EFAC_WIRE_TAIL("clean.hint"), !r.exhausted() && r.get_u8() != 0);
  return hint;
}
