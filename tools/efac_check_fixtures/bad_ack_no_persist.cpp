// EFAC001: the classic persist-before-ack violation — a durability-
// claiming reply sent with no flush+fence on one path. Shape: SAW-style
// persist handler that forgets the flush on the index-miss path.
#include "common/contracts.hpp"

struct Arena {
  void flush(unsigned long off, unsigned long len);
};
struct Replier {
  void reply(int status);
};

void ack_without_any_persist(Arena& arena, Replier r) {
  // No flush anywhere: every path reaches the ack bare.
  EFAC_ACK_SITE("fixture.bare_ack");  // EXPECT: EFAC001
  r.reply(0);
}

void ack_with_persist_on_one_path_only(Arena& arena, Replier r, bool hit) {
  if (hit) {
    arena.flush(0, 64);
    EFAC_PERSISTS("fixture.hit_path");
  }
  // The miss path (hit == false) falls through to the claim unpersisted
  // and without EFAC_NO_CLAIM.
  EFAC_ACK_SITE("fixture.half_covered_ack");  // EXPECT: EFAC001
  r.reply(0);
}

void ack_properly_covered(Arena& arena, Replier r, bool hit) {
  if (hit) {
    arena.flush(0, 64);
    EFAC_PERSISTS("fixture.hit_path");
  } else {
    EFAC_NO_CLAIM("fixture.miss_is_error_reply");
  }
  EFAC_ACK_SITE("fixture.covered_ack");
  r.reply(0);
}
