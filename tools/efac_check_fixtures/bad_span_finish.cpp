// EFAC006: `.finish()` on something that is not a locally declared
// metrics::Span. The RAII balance argument (every span closes exactly
// once) only holds for spans whose lifetime the function owns.
namespace metrics {
struct Tracer {};
struct Span {
  Span(Tracer& t, const char* name);
  void finish();
};
}  // namespace metrics

struct Holder {
  metrics::Span* stolen;
};

void finish_owned_span(metrics::Tracer& tracer) {
  metrics::Span op_span{tracer, "fixture.op"};
  op_span.finish();  // fine: declared above
}

void finish_foreign_span(Holder& h) {
  // not a Span declared in this function — double-finish risk
  h.stolen->finish();
}

void finish_unknown_name(Holder& h, metrics::Span& borrowed) {
  borrowed.finish();  // EXPECT: EFAC006
  (void)h;
}
