// EFAC005: a capturing lambda that is itself a coroutine. The lambda
// object (where captures live) is destroyed once the coroutine suspends;
// every capture dangles on resume. These three are the exact shapes the
// old regex lint (scripts/check_coro_captures.py pre-PR 9) missed.
namespace sim {
template <typename T>
struct Task {
  bool await_ready();
};
}  // namespace sim

struct Server {
  int port;
  void run();
};

void spawn_all(Server& server, int arr[4], int i) {
  // 1. whitespace between Task and its argument list defeated the old
  //    `-> sim::Task<` pattern
  auto bad_ws = [&server]() -> sim::Task <void> {  // EXPECT: EFAC005
    co_await server_ready(server);
    server.run();
  };

  // 2. nested brackets inside the capture list defeated `[^\[\]]+`
  auto bad_nested = [x = arr[i]]() -> sim::Task<int> {  // EXPECT: EFAC005
    co_return x;
  };

  // 3. deduced return type: no Task<...> in the signature at all, only
  //    the co_return in the body reveals the coroutine
  auto bad_deduced = [&server] {  // EXPECT: EFAC005
    co_return;
  };

  // capture-free coroutine lambdas are the sanctioned pattern
  auto good = [](Server& s) -> sim::Task<void> {
    co_await server_ready(s);
    s.run();
  };

  // capturing NON-coroutine lambdas are fine
  auto also_good = [&server] { server.run(); };

  (void)bad_ws;
  (void)bad_nested;
  (void)bad_deduced;
  (void)good;
  (void)also_good;
}
