// Waiver syntax calibration: a real violation silenced by an
// `efac-waive` comment with a reason produces no finding; a waiver
// WITHOUT a reason is itself an error (reported under the waived rule).
#include "common/contracts.hpp"

struct Replier {
  void reply(int status);
};

void waived_on_same_line(Replier r) {
  EFAC_ACK_SITE("wv.a");  // efac-waive: EFAC001 fixture calibrates waiver
  r.reply(0);
}

void waived_on_line_above(Replier r) {
  // efac-waive: EFAC001 reply carries no durability bit on this opcode
  EFAC_ACK_SITE("wv.b");
  r.reply(0);
}

void reasonless_waiver_is_an_error(Replier r) {
  // the missing reason is reported on the waiver's own line, and the
  // un-waived violation still fires too
  // efac-waive: EFAC001 EXPECT: EFAC001
  EFAC_ACK_SITE("wv.c");  // EXPECT: EFAC001
  r.reply(0);
}
